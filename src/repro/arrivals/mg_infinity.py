"""The M/G/infinity construction (Section VII-B, Appendices D and E).

Customers arrive in a Poisson stream of rate ``rho`` and occupy a server for
a service time drawn from distribution G; with infinitely many servers no one
waits, and X_t — the number of customers in the system at time t — is the
count process of interest.

Appendix D (Cox): the autocovariance is

    r(k) = rho * integral_k^inf (1 - F(x)) dx,

so Pareto service times with 1 < beta < 2 give r(k) ~ k^(1-beta) —
nonsummable, hence the count process is asymptotically self-similar /
long-range dependent, with Poisson marginals of mean rho * E[service] =
rho * beta * a / (beta - 1).

Appendix E: log-normal service times give a *summable* r(k): subexponential
but not heavy-tailed, so the M/G/infinity count process is NOT long-range
dependent — the paper's cautionary contrast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.lognormal import Log2Normal
from repro.distributions.pareto import Pareto
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class MGInfinity:
    """M/G/infinity occupancy process with arrival rate ``rho`` (per unit
    time) and service distribution ``service``."""

    rho: float
    service: Distribution

    def __post_init__(self):
        require_positive(self.rho, "rho")

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        n_steps: int,
        dt: float = 1.0,
        seed: SeedLike = None,
        warmup: float | None = None,
    ) -> np.ndarray:
        """Sample X_t at times 0, dt, 2dt, ..., (n_steps-1) dt.

        ``warmup`` seconds of arrivals before t=0 approximate the stationary
        regime (customers already in service at the start of observation).
        Defaults to 20 mean service times when the mean is finite, else to
        the observation span.
        """
        require_positive(dt, "dt")
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        rng = as_rng(seed)
        span = n_steps * dt
        if warmup is None:
            mean = self.service.mean
            warmup = 20.0 * mean if math.isfinite(mean) else span
        n_arrivals = rng.poisson(self.rho * (warmup + span))
        starts = rng.uniform(-warmup, span, size=n_arrivals)
        durations = self.service.sample(n_arrivals, seed=rng)
        ends = starts + durations

        # X at observation time t = #(starts <= t < ends); sweep via sorted
        # endpoint counts: X(t) = #starts<=t - #ends<=t.
        obs = dt * np.arange(n_steps)
        started = np.searchsorted(np.sort(starts), obs, side="right")
        finished = np.searchsorted(np.sort(ends), obs, side="right")
        return (started - finished).astype(np.int64)

    # ------------------------------------------------------------------
    # Closed forms (Appendix D)
    # ------------------------------------------------------------------
    @property
    def stationary_mean(self) -> float:
        """E[X] = rho * E[service] (Poisson marginal); inf if service mean
        is infinite."""
        return self.rho * self.service.mean

    def autocovariance(self, k, *, grid: int = 4096, upper_q: float = 1.0 - 1e-7):
        """r(k) = rho * integral_k^inf S(x) dx, computed numerically.

        Subclasses of :class:`Distribution` with closed-form integrated
        tails are special-cased in :func:`pareto_autocovariance`.
        """
        ks = np.atleast_1d(np.asarray(k, dtype=float))
        upper = float(self.service.ppf(upper_q))
        out = np.empty_like(ks)
        for i, kv in enumerate(ks):
            if kv >= upper:
                out[i] = 0.0
                continue
            # Log-spaced abscissae: the integrated tail is concentrated near
            # k while the support can span many decades.
            lo = max(kv, 1e-12)
            x = np.geomspace(lo, upper, grid)
            if kv < lo:
                x = np.concatenate([[kv], x])
            s = np.asarray(self.service.sf(x), dtype=float)
            out[i] = self.rho * np.trapezoid(s, x)
        return out if np.ndim(k) else float(out[0])


def pareto_autocovariance(rho: float, location: float, shape: float, k):
    """Closed-form Appendix D autocovariance for Pareto(location, shape)
    service with shape > 1:

        r(k) = rho * a^beta * k^(1-beta) / (beta - 1)      for k >= a,
        r(k) = rho * [ (a - k) + a / (beta - 1) ]          for 0 <= k < a,

    the second branch accounting for the S(x) = 1 region below the location.
    """
    require_positive(rho, "rho")
    require_positive(location, "location")
    if shape <= 1.0:
        raise ValueError("closed form requires shape > 1 (finite mean)")
    a, b = location, shape
    ks = np.atleast_1d(np.asarray(k, dtype=float))
    out = np.empty_like(ks)
    below = ks < a
    out[below] = rho * ((a - ks[below]) + a / (b - 1.0))
    out[~below] = rho * a**b * ks[~below] ** (1.0 - b) / (b - 1.0)
    return out if np.ndim(k) else float(out[0])


def pareto_mg_infinity(rho: float, location: float, shape: float) -> MGInfinity:
    """M/G/infinity with Pareto service — asymptotically self-similar for
    1 < shape < 2 (Appendix D)."""
    return MGInfinity(rho, Pareto(location, shape))


def lognormal_mg_infinity(rho: float, log2_mean: float, log2_sd: float) -> MGInfinity:
    """M/G/infinity with log-normal service — NOT long-range dependent
    (Appendix E)."""
    return MGInfinity(rho, Log2Normal(log2_mean, log2_sd))


def is_long_range_dependent(service: Distribution, *, k_max: float = 1e9) -> bool:
    """Decide LRD by the growth of the partial sums of r(k).

    For Pareto service the decision is analytic: nonsummable iff shape <= 2.
    For log-normal service Appendix E proves summability (returns False).
    Other distributions are judged numerically by whether the integrated
    tail sum keeps growing per decade out to ``k_max``.
    """
    if isinstance(service, Pareto):
        return service.shape <= 2.0
    if isinstance(service, Log2Normal):
        return False
    # Numeric heuristic: compare the partial sum added per decade.
    model = MGInfinity(1.0, service)
    decades = np.geomspace(1.0, k_max, 10)
    increments = []
    for lo, hi in zip(decades[:-1], decades[1:]):
        ks = np.geomspace(lo, hi, 16)
        r = model.autocovariance(ks)
        increments.append(float(np.trapezoid(np.atleast_1d(r), ks)))
    # Summable covariances have geometrically vanishing decade increments.
    return increments[-1] > 0.5 * increments[0]


def asymptotic_hurst(shape: float) -> float:
    """Hurst parameter of the asymptotically self-similar M/G/infinity count
    process with Pareto(beta) service, 1 < beta < 2:

        r(k) ~ k^(1-beta) = k^(-D)  with D = beta - 1  =>  H = 1 - D/2
        = (3 - beta) / 2.
    """
    if not 1.0 < shape < 2.0:
        raise ValueError("asymptotic self-similarity requires 1 < shape < 2")
    return (3.0 - shape) / 2.0
