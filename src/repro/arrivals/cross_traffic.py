"""Self-similar cross-traffic generation (Section VII-D).

"This approach could have many uses in simulations and in analysis.  For
example, self-similar traffic could be used instead of Poisson traffic to
model cross-traffic, or self-similar traffic could be used in simulations
investigating link-sharing between two different classes of traffic."

The generator modulates a Poisson packet stream with a fractional-Gaussian-
noise rate envelope: per-bin counts are Poisson(lambda_i) with lambda_i an
fGn sample shifted/scaled to the requested mean and burstiness, giving a
packet process whose counts inherit the envelope's long-range dependence
(a doubly stochastic / Cox construction).
"""

from __future__ import annotations

import numpy as np

from repro.selfsim.fgn import fgn_sample
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.validation import require_in_range, require_positive


def self_similar_cross_traffic(
    mean_rate: float,
    duration: float,
    hurst: float = 0.85,
    burstiness: float = 0.5,
    bin_width: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Packet arrival times with long-range dependent rate modulation.

    Parameters
    ----------
    mean_rate:
        Target mean packets/second.
    hurst:
        Hurst parameter of the fGn rate envelope.
    burstiness:
        Coefficient of variation of the rate envelope (0 = plain Poisson);
        values much above ~0.7 spend substantial time clipped at rate 0.
    bin_width:
        Envelope granularity in seconds: rate is constant within a bin.
    """
    require_positive(mean_rate, "mean_rate")
    require_positive(duration, "duration")
    require_positive(bin_width, "bin_width")
    require_in_range(hurst, "hurst", 0.0, 1.0, inclusive=False)
    if burstiness < 0:
        raise ValueError("burstiness must be >= 0")
    rng_env, rng_pkt = spawn_rngs(seed, 2)
    n_bins = int(np.ceil(duration / bin_width))
    if n_bins < 1:
        return np.zeros(0)
    if burstiness == 0:
        lam = np.full(n_bins, mean_rate * bin_width)
    else:
        envelope = fgn_sample(max(n_bins, 2), hurst, seed=rng_env)[:n_bins]
        lam = np.maximum(
            mean_rate * (1.0 + burstiness * envelope), 0.0
        ) * bin_width
    counts = rng_pkt.poisson(lam)
    times = []
    for i, c in enumerate(counts):
        if c:
            times.append(i * bin_width + rng_pkt.random(c) * bin_width)
    if not times:
        return np.zeros(0)
    all_times = np.sort(np.concatenate(times))
    return all_times[all_times < duration]
