"""Tail-concentration diagnostics for heavy-tailed size distributions.

Section VI's key quantitative claim is about tail *mass*: "the upper 0.5%
tail of the FTPDATA bursts holds between 30-60% of all the FTPDATA bytes",
versus ~3% for any exponential.  These helpers compute the concentration
curves of Fig. 9, empirical CCDFs, and conditional-mean-exceedance curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_probability


def top_fraction_share(sizes, fraction: float) -> float:
    """Share of the total held by the largest ``fraction`` of items.

    ``top_fraction_share(bytes, 0.005)`` reproduces the paper's
    "upper 0.5% tail holds X% of the bytes" numbers.  The number of items in
    the tail is rounded up, so the tail is never empty for fraction > 0.
    """
    require_probability(fraction, "fraction")
    arr = np.sort(np.asarray(sizes, dtype=float))[::-1]
    if arr.size == 0:
        raise ValueError("empty size sample")
    total = float(arr.sum())
    if total <= 0:
        raise ValueError("total size must be positive")
    k = int(np.ceil(fraction * arr.size)) if fraction > 0 else 0
    return float(arr[:k].sum() / total)


@dataclass(frozen=True)
class ConcentrationCurve:
    """Cumulative share of bytes vs share of (largest-first) items: Fig. 9."""

    item_fractions: np.ndarray  # x-axis: fraction of all items, largest first
    mass_fractions: np.ndarray  # y-axis: fraction of total mass they hold
    n_items: int

    def share_at(self, fraction: float) -> float:
        """Mass share of the top ``fraction`` of items.

        Uses the same right-continuous convention as
        :func:`top_fraction_share`: the number of tail items is rounded
        *up*, so for any ``fraction > 0`` at least one item is in the tail
        and ``share_at(f) == top_fraction_share(sizes, f)`` exactly.
        (Linear interpolation between curve points would instead slide
        toward the ``(0, 0)`` anchor for fractions below ``1/n`` — a ~10x
        understatement of the paper's "upper 0.5% tail" numbers whenever
        ``n < 200``.)
        """
        require_probability(fraction, "fraction")
        k = int(np.ceil(fraction * self.n_items)) if fraction > 0 else 0
        return float(self.mass_fractions[k])


def concentration_curve(sizes) -> ConcentrationCurve:
    """Build the Fig. 9 curve: percentage of mass vs percentage of bursts."""
    arr = np.sort(np.asarray(sizes, dtype=float))[::-1]
    if arr.size == 0:
        raise ValueError("empty size sample")
    total = float(arr.sum())
    if total <= 0:
        raise ValueError("total size must be positive")
    mass = np.cumsum(arr) / total
    items = np.arange(1, arr.size + 1) / arr.size
    return ConcentrationCurve(
        item_fractions=np.concatenate([[0.0], items]),
        mass_fractions=np.concatenate([[0.0], mass]),
        n_items=arr.size,
    )


def exponential_top_share(fraction: float) -> float:
    """Closed-form concentration of an exponential, for contrast.

    For Exponential(mean m), the largest ``fraction`` q of a large sample
    are those above x_q = -m ln q, and their mass share is

        (integral_{x_q}^inf x e^{-x/m} dx / m) / m = q (1 - ln q),

    independent of m.  The paper: "the upper 0.5% tail of an exponential
    distribution always holds about 3% of the entire mass ... regardless of
    the distribution's mean."
    """
    require_probability(fraction, "fraction")
    if fraction == 0.0:
        return 0.0
    return float(fraction * (1.0 - np.log(fraction)))


def empirical_ccdf(samples) -> tuple[np.ndarray, np.ndarray]:
    """Empirical survival curve at the sample points, for log-log tail plots.

    Uses the ``(n - i + 1) / n`` plotting convention (survival evaluated
    just *below* each order statistic), so every returned probability is
    strictly positive: the largest sample gets ``1/n`` rather than 0, which
    would become ``-inf`` on the paper's log-log tail plots (Figs. 3/8) and
    silently drop the single deepest tail point — the most informative one
    for β estimation.  With tied samples each tied point keeps its own
    plotting position; all positions remain in ``(0, 1]`` and nonincreasing.
    """
    x = np.sort(np.asarray(samples, dtype=float))
    if x.size == 0:
        raise ValueError("empty sample")
    n = x.size
    sf = (n - np.arange(1, n + 1) + 1) / n
    return x, sf


def mean_exceedance_curve(samples, quantiles=None) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CMEX curve (Appendix B): thresholds and E[X - t | X > t].

    Increasing curves indicate heavy tails; the exponential is flat; light
    tails decrease.
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size < 10:
        raise ValueError("need at least 10 samples")
    qs = np.linspace(0.1, 0.95, 18) if quantiles is None else np.asarray(quantiles)
    thresholds, cmex = [], []
    for q in qs:
        t = float(np.quantile(arr, q))
        exceed = arr[arr > t]
        if exceed.size == 0:
            break
        thresholds.append(t)
        cmex.append(float(np.mean(exceed - t)))
    return np.asarray(thresholds), np.asarray(cmex)
