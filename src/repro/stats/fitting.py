"""Distribution model selection.

The paper repeatedly adjudicates between candidate laws: TELNET connection
bytes are "well-modeled using a log-extreme distribution" while packets fit
"a log2-normal distribution ... considerably better than a log-extreme
distribution with parameters fitted to the data" (Section V); FTPDATA
spacings are "better approximated using a log-normal or log-logistic
distribution" (Section VI).  This module makes those comparisons a one-call
operation: fit each candidate by its own estimator, score by
Kolmogorov-Smirnov distance and log-likelihood (AIC), and rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.distributions.base import Distribution
from repro.distributions.exponential import Exponential
from repro.distributions.logextreme import LogExtreme
from repro.distributions.loglogistic import LogLogistic
from repro.distributions.lognormal import Log2Normal
from repro.distributions.pareto import Pareto
from repro.distributions.weibull import Weibull


def _fit_weibull(samples: np.ndarray) -> Weibull:
    shape, _, scale = sps.weibull_min.fit(samples, floc=0.0)
    return Weibull(scale=float(scale), shape=float(shape))


#: name -> fitting function
CANDIDATES = {
    "exponential": Exponential.fit,
    "pareto": Pareto.fit,
    "log2-normal": Log2Normal.fit,
    "log-extreme": LogExtreme.fit,
    "log-logistic": LogLogistic.fit,
    "weibull": _fit_weibull,
}


@dataclass(frozen=True)
class FitReport:
    """One candidate's goodness of fit."""

    name: str
    distribution: Distribution
    ks_statistic: float
    log_likelihood: float
    n_parameters: int

    @property
    def aic(self) -> float:
        return 2.0 * self.n_parameters - 2.0 * self.log_likelihood

    def row(self) -> dict:
        return {
            "model": self.name,
            "ks": self.ks_statistic,
            "loglik": self.log_likelihood,
            "aic": self.aic,
        }


_N_PARAMS = {
    "exponential": 1,
    "pareto": 2,
    "log2-normal": 2,
    "log-extreme": 2,
    "log-logistic": 2,
    "weibull": 2,
}


def ks_distance(samples: np.ndarray, dist: Distribution) -> float:
    """Kolmogorov-Smirnov sup-distance between the ECDF and a fitted CDF."""
    x = np.sort(np.asarray(samples, dtype=float))
    n = x.size
    if n == 0:
        raise ValueError("empty sample")
    cdf = np.asarray(dist.cdf(x), dtype=float)
    upper = np.arange(1, n + 1) / n - cdf
    lower = cdf - np.arange(0, n) / n
    return float(max(upper.max(), lower.max()))


def log_likelihood(samples: np.ndarray, dist: Distribution) -> float:
    """Sum of log densities; -inf if any sample has zero density."""
    pdf = np.asarray(dist.pdf(np.asarray(samples, dtype=float)), dtype=float)
    if np.any(pdf <= 0.0):
        return float("-inf")
    return float(np.sum(np.log(pdf)))


def compare_fits(
    samples,
    candidates: Sequence[str] | None = None,
    criterion: str = "ks",
) -> list[FitReport]:
    """Fit every candidate and rank best-first.

    ``criterion`` is "ks" (Kolmogorov-Smirnov distance) or "aic"; AIC's
    parameter penalty matters for nested families (a Weibull always KS-fits
    exponential data at least as well as the exponential itself).
    Candidates that fail to fit (e.g. a Pareto when samples include values
    at/below zero) are skipped.
    """
    if criterion not in ("ks", "aic"):
        raise ValueError(f"criterion must be 'ks' or 'aic', got {criterion!r}")
    arr = np.asarray(samples, dtype=float)
    if arr.size < 10:
        raise ValueError("need at least 10 samples for model comparison")
    names = list(CANDIDATES) if candidates is None else list(candidates)
    reports = []
    for name in names:
        if name not in CANDIDATES:
            raise KeyError(f"unknown candidate {name!r}; known: {sorted(CANDIDATES)}")
        try:
            dist = CANDIDATES[name](arr)
        except (ValueError, RuntimeError):
            continue
        reports.append(
            FitReport(
                name=name,
                distribution=dist,
                ks_statistic=ks_distance(arr, dist),
                log_likelihood=log_likelihood(arr, dist),
                n_parameters=_N_PARAMS[name],
            )
        )
    if not reports:
        raise ValueError("no candidate could be fitted to the sample")
    if criterion == "ks":
        reports.sort(key=lambda r: r.ks_statistic)
    else:
        reports.sort(key=lambda r: r.aic)
    return reports


def best_fit(samples, candidates: Sequence[str] | None = None,
             criterion: str = "ks") -> FitReport:
    """The best candidate under the chosen criterion."""
    return compare_fits(samples, candidates, criterion=criterion)[0]
