"""Descriptive statistics rows for arrival processes.

A compact characterization used throughout the examples and reports: given
event times, summarize the interarrival distribution (mean, CV, lag-1
autocorrelation) and the count process (index of dispersion at a chosen bin
width).  A Poisson process scores CV ~ 1, r1 ~ 0, IoD ~ 1; each of the
paper's non-Poisson mechanisms leaves a distinct signature here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.independence import lag1_independence_test
from repro.utils.binning import bin_counts
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class ArrivalSummary:
    """One arrival process's fingerprint."""

    n_events: int
    duration: float
    rate: float
    interarrival_mean: float
    interarrival_cv: float
    lag1_autocorrelation: float
    index_of_dispersion: float
    bin_width: float

    @property
    def poisson_like(self) -> bool:
        """Rough screen (not a test — use evaluate_arrival_process for
        that): CV and IoD near 1, negligible lag-1 correlation."""
        return (
            abs(self.interarrival_cv - 1.0) < 0.25
            and abs(self.index_of_dispersion - 1.0) < 0.4
            and abs(self.lag1_autocorrelation) < 0.1
        )

    def row(self) -> dict:
        return {
            "events": self.n_events,
            "rate_per_s": self.rate,
            "ia_mean_s": self.interarrival_mean,
            "ia_cv": self.interarrival_cv,
            "r1": self.lag1_autocorrelation,
            "IoD": self.index_of_dispersion,
            "poisson_like": self.poisson_like,
        }


def summarize_arrivals(
    times,
    bin_width: float = 60.0,
    start: float | None = None,
    end: float | None = None,
) -> ArrivalSummary:
    """Fingerprint an arrival process."""
    require_positive(bin_width, "bin_width")
    t = np.sort(np.asarray(times, dtype=float))
    if t.size < 10:
        raise ValueError("need at least 10 events to summarize")
    lo = float(t[0]) if start is None else float(start)
    hi = float(t[-1]) if end is None else float(end)
    duration = hi - lo
    if duration <= 0:
        raise ValueError("empty observation window")
    gaps = np.diff(t)
    gaps = gaps[gaps >= 0]
    mean = float(gaps.mean())
    cv = float(gaps.std() / mean) if mean > 0 else float("inf")
    r1 = lag1_independence_test(gaps).r1
    counts = bin_counts(t, bin_width, start=lo, end=hi)
    if counts.size >= 2 and counts.mean() > 0:
        iod = float(counts.var() / counts.mean())
    else:
        iod = float("nan")
    return ArrivalSummary(
        n_events=int(t.size),
        duration=duration,
        rate=t.size / duration,
        interarrival_mean=mean,
        interarrival_cv=cv,
        lag1_autocorrelation=r1,
        index_of_dispersion=iod,
        bin_width=bin_width,
    )
