"""Statistical testing substrate: Appendix A's Poisson-testing methodology
plus the tail diagnostics of Sections IV and VI."""

from repro.stats.anderson_darling import (
    CRITICAL_VALUES,
    NORMAL_CRITICAL_VALUES,
    AndersonDarlingResult,
    anderson_darling_exponential,
    anderson_darling_normal,
    anderson_darling_statistic,
)
from repro.stats.descriptive import ArrivalSummary, summarize_arrivals
from repro.stats.binomial import (
    PassRateVerdict,
    SignBiasVerdict,
    binomial_lower_tail,
    binomial_upper_tail,
    pass_rate_verdict,
    sign_bias_verdict,
)
from repro.stats.fitting import (
    CANDIDATES,
    FitReport,
    best_fit,
    compare_fits,
    ks_distance,
    log_likelihood,
)
from repro.stats.independence import (
    IndependenceResult,
    acf,
    autocorrelation,
    lag1_independence_test,
)
from repro.stats.poisson_tests import (
    DEFAULT_MIN_ARRIVALS,
    IntervalOutcome,
    PoissonTestResult,
    split_into_intervals,
    evaluate_arrival_process,
    evaluate_index_interarrivals,
    evaluate_interval,
)
from repro.stats.tail import (
    ConcentrationCurve,
    concentration_curve,
    empirical_ccdf,
    exponential_top_share,
    mean_exceedance_curve,
    top_fraction_share,
)

__all__ = [
    "CRITICAL_VALUES",
    "DEFAULT_MIN_ARRIVALS",
    "AndersonDarlingResult",
    "ArrivalSummary",
    "CANDIDATES",
    "ConcentrationCurve",
    "FitReport",
    "IndependenceResult",
    "IntervalOutcome",
    "PassRateVerdict",
    "PoissonTestResult",
    "SignBiasVerdict",
    "acf",
    "NORMAL_CRITICAL_VALUES",
    "anderson_darling_exponential",
    "anderson_darling_normal",
    "anderson_darling_statistic",
    "autocorrelation",
    "best_fit",
    "binomial_lower_tail",
    "binomial_upper_tail",
    "compare_fits",
    "concentration_curve",
    "empirical_ccdf",
    "exponential_top_share",
    "ks_distance",
    "log_likelihood",
    "lag1_independence_test",
    "mean_exceedance_curve",
    "pass_rate_verdict",
    "sign_bias_verdict",
    "split_into_intervals",
    "summarize_arrivals",
    "evaluate_arrival_process",
    "evaluate_index_interarrivals",
    "evaluate_interval",
    "top_fraction_share",
]
