"""Appendix A's complete methodology for testing Poisson arrivals.

The procedure, verbatim from the paper:

1.  Pick an interval length I (one hour or ten minutes) over which the
    arrival rate is hypothesized constant, dividing a trace of length T into
    N = T / I intervals.
2.  Separately test each interval's interarrivals (i) for an exponential
    distribution via the Anderson-Darling A^2 test with the mean estimated
    from the interval, and (ii) for independence via the lag-1
    autocorrelation white-noise bound 1.96/sqrt(n).
3.  Roll up: if arrivals are truly Poisson, ~95% of intervals pass each
    test; an exact Binomial(N, 0.95) lower-tail test at 5% decides
    consistency.  Additionally, the signs of the lag-1 autocorrelations
    should be fair-coin; a Binomial(N, 0.5) upper-tail test at 2.5% flags
    consistently positive or negative correlation (the "+" / "-" annotations
    of Fig. 2).

A trace is "statistically indistinguishable from Poisson arrivals" (drawn
bold in Fig. 2) when both roll-up tests are consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stats.anderson_darling import anderson_darling_exponential
from repro.stats.binomial import (
    PassRateVerdict,
    SignBiasVerdict,
    pass_rate_verdict,
    sign_bias_verdict,
)
from repro.stats.independence import lag1_independence_test
from repro.utils.validation import require_positive

#: Fewest arrivals for which testing an interval is meaningful: the A^2
#: critical values and the 1.96/sqrt(n) bound are both asymptotic, and an
#: interval with a handful of arrivals carries almost no information.
DEFAULT_MIN_ARRIVALS = 8


@dataclass(frozen=True)
class IntervalOutcome:
    """Per-interval test outcome."""

    index: int
    n_arrivals: int
    exponential_passed: bool
    independence_passed: bool
    r1: float
    a2_statistic: float


@dataclass(frozen=True)
class PoissonTestResult:
    """Roll-up of the Appendix A methodology over one trace / protocol."""

    interval_length: float
    n_intervals_total: int
    n_intervals_tested: int
    intervals: tuple[IntervalOutcome, ...] = field(repr=False)
    exponential_verdict: PassRateVerdict
    independence_verdict: PassRateVerdict
    sign_bias: SignBiasVerdict

    @property
    def exponential_pass_rate(self) -> float:
        """Fig. 2's x-coordinate."""
        return self.exponential_verdict.pass_rate

    @property
    def independence_pass_rate(self) -> float:
        """Fig. 2's y-coordinate."""
        return self.independence_verdict.pass_rate

    @property
    def poisson_consistent(self) -> bool:
        """Fig. 2's bold letters: statistically indistinguishable from
        Poisson arrivals with fixed per-interval rates."""
        return (
            self.exponential_verdict.consistent
            and self.independence_verdict.consistent
        )

    @property
    def correlation_label(self) -> str:
        """'+', '-' or '' — consistent sign bias of consecutive
        interarrival correlations."""
        return self.sign_bias.label

    def summary_row(self) -> dict:
        """One row of the Fig. 2 data table."""
        return {
            "interval": self.interval_length,
            "tested": self.n_intervals_tested,
            "exp_pass_pct": 100.0 * self.exponential_pass_rate,
            "indep_pass_pct": 100.0 * self.independence_pass_rate,
            "poisson": self.poisson_consistent,
            "corr": self.correlation_label,
        }


def split_into_intervals(
    times: np.ndarray,
    interval_length: float,
    start: float | None = None,
    end: float | None = None,
) -> list[np.ndarray]:
    """Split sorted arrival times into consecutive fixed-length intervals."""
    require_positive(interval_length, "interval_length")
    t = np.sort(np.asarray(times, dtype=float))
    if t.size == 0:
        return []
    lo = float(t[0]) if start is None else float(start)
    hi = float(t[-1]) if end is None else float(end)
    n = int(np.floor((hi - lo) / interval_length))
    out = []
    for i in range(n):
        a, b = lo + i * interval_length, lo + (i + 1) * interval_length
        out.append(t[(t >= a) & (t < b)])
    return out


def evaluate_interval(
    arrivals: np.ndarray, index: int = 0, significance: float = 0.05
) -> IntervalOutcome:
    """Run both per-interval tests on the arrivals of one interval."""
    t = np.sort(np.asarray(arrivals, dtype=float))
    gaps = np.diff(t)
    ad = anderson_darling_exponential(gaps, significance=significance)
    indep = lag1_independence_test(gaps)
    return IntervalOutcome(
        index=index,
        n_arrivals=t.size,
        exponential_passed=ad.passed,
        independence_passed=indep.passed,
        r1=indep.r1,
        a2_statistic=ad.statistic,
    )


def evaluate_arrival_process(
    times: np.ndarray,
    interval_length: float,
    *,
    significance: float = 0.05,
    min_arrivals: int = DEFAULT_MIN_ARRIVALS,
    start: float | None = None,
    end: float | None = None,
) -> PoissonTestResult:
    """Apply the full Appendix A methodology to one arrival process.

    Parameters
    ----------
    times:
        Arrival timestamps (seconds).
    interval_length:
        The fixed-rate hypothesis window: 3600.0 for the paper's one-hour
        tests, 600.0 for the ten-minute tests.
    significance:
        Per-interval significance level (the paper uses 5%).
    min_arrivals:
        Intervals with fewer arrivals are skipped (too little information
        for either asymptotic test).
    """
    chunks = split_into_intervals(times, interval_length, start=start, end=end)
    outcomes = []
    for i, chunk in enumerate(chunks):
        if chunk.size < min_arrivals:
            continue
        outcomes.append(evaluate_interval(chunk, index=i, significance=significance))
    if not outcomes:
        raise ValueError(
            "no interval had enough arrivals to test; "
            f"need >= {min_arrivals} arrivals per {interval_length}s interval"
        )
    exp_passes = sum(1 for o in outcomes if o.exponential_passed)
    ind_passes = sum(1 for o in outcomes if o.independence_passed)
    expected_pass = 1.0 - significance
    return PoissonTestResult(
        interval_length=interval_length,
        n_intervals_total=len(chunks),
        n_intervals_tested=len(outcomes),
        intervals=tuple(outcomes),
        exponential_verdict=pass_rate_verdict(exp_passes, len(outcomes), expected_pass),
        independence_verdict=pass_rate_verdict(ind_passes, len(outcomes), expected_pass),
        sign_bias=sign_bias_verdict([np.sign(o.r1) for o in outcomes]),
    )


def evaluate_index_interarrivals(
    times: np.ndarray,
    *,
    significance: float = 0.05,
) -> IntervalOutcome:
    """Test arrivals with daily-rate effects removed by *index* spacing.

    Section VI tests the upper-0.5%-tail FTPDATA burst arrivals "first
    removing effects due to daily variation in traffic rates by looking at
    interarrivals in terms of number of intervening bursts instead of
    seconds": arrival i is mapped to its index i, and the interarrivals of
    the sub-process are measured in counts of intervening events.  Here the
    caller passes the *selected* events' positions among all events.
    """
    idx = np.sort(np.asarray(times, dtype=float))
    if idx.size < 3:
        raise ValueError("need at least 3 events")
    return evaluate_interval(idx, significance=significance)
