"""Autocorrelation-based independence tests for interarrival times.

Appendix A: "one indication of independence is an absence of significant
autocorrelation among the interarrivals ... Given a time series of n samples
from an uncorrelated white-noise process, the probability that the magnitude
of the autocorrelation at any lag will exceed 1.96/sqrt(n) is 5%."  The
paper restricts the test to lag one because "for many non-Poisson processes
autocorrelation among interarrivals peaks at lag one."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def autocorrelation(series: np.ndarray, lag: int) -> float:
    """Sample autocorrelation at ``lag`` (biased normalization, as standard).

    r(k) = sum_{i} (x_i - xbar)(x_{i+k} - xbar) / sum_i (x_i - xbar)^2.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if lag < 0:
        raise ValueError(f"lag must be >= 0, got {lag}")
    if n <= lag:
        raise ValueError(f"series of length {n} too short for lag {lag}")
    xc = x - x.mean()
    denom = float(np.sum(xc**2))
    if denom == 0.0:
        raise ValueError("series is constant; autocorrelation undefined")
    if lag == 0:
        return 1.0
    return float(np.sum(xc[:-lag] * xc[lag:]) / denom)


def acf(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Autocorrelation function r(0..max_lag), computed via FFT.

    Used by the self-similarity analyses, where r(k) must be evaluated out
    to large lags efficiently.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if max_lag >= n:
        raise ValueError(f"max_lag ({max_lag}) must be < series length ({n})")
    xc = x - x.mean()
    denom = float(np.sum(xc**2))
    if denom == 0.0:
        raise ValueError("series is constant; autocorrelation undefined")
    size = 1 << (2 * n - 1).bit_length()
    f = np.fft.rfft(xc, size)
    corr = np.fft.irfft(f * np.conj(f), size)[: max_lag + 1]
    return corr / denom


@dataclass(frozen=True)
class IndependenceResult:
    """Outcome of the lag-1 white-noise autocorrelation test."""

    r1: float
    n: int
    threshold: float  # 1.96 / sqrt(n)

    @property
    def passed(self) -> bool:
        """Consistent with independent interarrivals at the 5% level."""
        return abs(self.r1) <= self.threshold

    @property
    def sign(self) -> int:
        """+1 / -1 according to the sign of r1 (0 if exactly zero)."""
        return int(np.sign(self.r1))


def lag1_independence_test(interarrivals: np.ndarray) -> IndependenceResult:
    """Appendix A's per-interval independence test at lag one.

    A degenerate (constant) series — e.g. perfectly periodic arrivals —
    carries no *correlation* evidence either way, so it is reported with
    r1 = 0; such traffic is caught by the exponentiality test instead.
    """
    x = np.asarray(interarrivals, dtype=float)
    if x.size < 2:
        raise ValueError("need at least 2 interarrivals")
    xc = x - x.mean()
    if float(np.sum(xc**2)) == 0.0:
        r1 = 0.0
    else:
        r1 = autocorrelation(x, 1)
    return IndependenceResult(r1=r1, n=x.size, threshold=1.96 / np.sqrt(x.size))
