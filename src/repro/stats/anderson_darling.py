"""Anderson-Darling A^2 test for exponentially distributed interarrivals.

Appendix A tests each interval's interarrival times "for an exponential
distribution using the Anderson-Darling (A^2) test, recommended by Stephens
in [10] because it is generally much more powerful than either of the
better-known Kolmogorov-Smirnov or chi^2 tests" and "particularly good for
detecting deviations in the tails".

Two details the paper calls out are handled here exactly as in
D'Agostino & Stephens (1986), Case 3 (exponential with mean estimated from
the data):

* estimating the mean from the tested sample changes the null distribution,
  so the statistic is modified to A^2 * (1 + 0.6 / n);
* critical values come from the Case-3 table, not the all-parameters-known
  table.

:func:`anderson_darling_normal` is the normal-law sibling (Case 4: mean and
variance both estimated, modification A^2 (1 + 0.75/n + 2.25/n^2)), used by
the superposition phase diagram to score how Gaussian the aggregate
marginal looks in the slow- vs fast-connection-growth regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

#: Case-3 (exponential, mean estimated) critical values for the modified
#: statistic A^2 (1 + 0.6/n), from D'Agostino & Stephens (1986), Table 4.14.
#: Keys are significance levels (false-rejection probabilities).
CRITICAL_VALUES: dict[float, float] = {
    0.15: 0.922,
    0.10: 1.078,
    0.05: 1.341,
    0.025: 1.606,
    0.01: 1.957,
}

#: Case-4 (normal, mean and variance estimated) critical values for the
#: modified statistic A^2 (1 + 0.75/n + 2.25/n^2), from D'Agostino &
#: Stephens (1986), Table 4.7.
NORMAL_CRITICAL_VALUES: dict[float, float] = {
    0.15: 0.576,
    0.10: 0.656,
    0.05: 0.787,
    0.025: 0.918,
    0.01: 1.092,
}


@dataclass(frozen=True)
class AndersonDarlingResult:
    """Outcome of one A^2 test for exponentiality."""

    statistic: float  # modified statistic A^2 (1 + 0.6/n)
    n: int
    significance: float
    critical_value: float

    @property
    def passed(self) -> bool:
        """True if the sample is consistent with exponential interarrivals
        at the chosen significance level."""
        return self.statistic <= self.critical_value


def anderson_darling_statistic(samples: np.ndarray, mean: float | None = None) -> float:
    """Raw A^2 statistic against Exponential(mean).

    If ``mean`` is None it is estimated by the sample mean (Case 3); the
    caller is responsible for applying the finite-sample modification.
    """
    x = np.sort(np.asarray(samples, dtype=float))
    n = x.size
    if n < 2:
        raise ValueError(f"need at least 2 samples, got {n}")
    if not np.all(np.isfinite(x)):
        raise ValueError("samples must be finite")
    if np.any(x < 0):
        raise ValueError("exponential samples must be nonnegative")
    m = float(np.mean(x)) if mean is None else float(mean)
    if m <= 0:
        raise ValueError(f"mean must be positive, got {m}")
    z = -np.expm1(-x / m)  # F(x) under the fitted exponential
    # Clip to the open interval to keep the logs finite when an observation
    # sits in the extreme tail of the fitted distribution.
    eps = np.finfo(float).tiny
    z = np.clip(z, eps, 1.0 - 1e-15)
    i = np.arange(1, n + 1)
    s = np.sum((2 * i - 1) * (np.log(z) + np.log1p(-z[::-1])))
    return float(-n - s / n)


def anderson_darling_exponential(
    samples: np.ndarray, significance: float = 0.05
) -> AndersonDarlingResult:
    """Full Case-3 A^2 test: estimate the mean, modify, compare to the table.

    ``significance`` must be one of the tabulated levels
    (0.15, 0.10, 0.05, 0.025, 0.01); the paper uses 5%.
    """
    if significance not in CRITICAL_VALUES:
        raise ValueError(
            f"significance must be one of {sorted(CRITICAL_VALUES)}, got {significance}"
        )
    x = np.asarray(samples, dtype=float)
    a2 = anderson_darling_statistic(x)
    modified = a2 * (1.0 + 0.6 / x.size)
    return AndersonDarlingResult(
        statistic=modified,
        n=x.size,
        significance=significance,
        critical_value=CRITICAL_VALUES[significance],
    )


def _a2_from_probabilities(z: np.ndarray) -> float:
    """Raw A^2 from sorted fitted-CDF values ``z`` (clipped to (0, 1))."""
    n = z.size
    eps = np.finfo(float).tiny
    z = np.clip(z, eps, 1.0 - 1e-15)
    i = np.arange(1, n + 1)
    s = np.sum((2 * i - 1) * (np.log(z) + np.log1p(-z[::-1])))
    return float(-n - s / n)


def anderson_darling_normal(
    samples: np.ndarray, significance: float = 0.05
) -> AndersonDarlingResult:
    """Case-4 A^2 test for normality (mean and variance both estimated).

    The statistic is modified to A^2 (1 + 0.75/n + 2.25/n^2) and compared
    against the Case-4 table (:data:`NORMAL_CRITICAL_VALUES`).  Used as the
    marginal-Gaussianity score in the superposition phase diagram: a small
    statistic means the aggregate marginal is consistent with the Gaussian
    (slow-connection-growth) limit, a large one flags the heavy-tailed
    (fast-growth, stable-like) regime.
    """
    if significance not in NORMAL_CRITICAL_VALUES:
        raise ValueError(
            f"significance must be one of {sorted(NORMAL_CRITICAL_VALUES)},"
            f" got {significance}"
        )
    x = np.sort(np.asarray(samples, dtype=float))
    n = x.size
    if n < 8:
        raise ValueError(f"need at least 8 samples, got {n}")
    if not np.all(np.isfinite(x)):
        raise ValueError("samples must be finite")
    s = float(np.std(x, ddof=1))
    if s <= 0:
        raise ValueError("samples must not be constant")
    z = special.ndtr((x - float(np.mean(x))) / s)
    a2 = _a2_from_probabilities(z)
    modified = a2 * (1.0 + 0.75 / n + 2.25 / n**2)
    return AndersonDarlingResult(
        statistic=modified,
        n=n,
        significance=significance,
        critical_value=NORMAL_CRITICAL_VALUES[significance],
    )
