"""Exact binomial significance helpers for Appendix A's roll-up tests.

Per-interval tests produce pass/fail outcomes; Appendix A then asks whether
the number of passes across N intervals is plausible under
Binomial(N, 0.95), and whether the signs of the lag-1 autocorrelations are
plausible under Binomial(N, 0.5).  Both are exact one-sided binomial tail
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats

from repro.utils.validation import require_probability


def binomial_lower_tail(successes: int, trials: int, p: float) -> float:
    """P[K <= successes] for K ~ Binomial(trials, p)."""
    _check(successes, trials)
    require_probability(p, "p")
    return float(stats.binom.cdf(successes, trials, p))


def binomial_upper_tail(successes: int, trials: int, p: float) -> float:
    """P[K >= successes] for K ~ Binomial(trials, p)."""
    _check(successes, trials)
    require_probability(p, "p")
    return float(stats.binom.sf(successes - 1, trials, p))


@dataclass(frozen=True)
class PassRateVerdict:
    """Is an observed per-interval pass count consistent with the expected
    pass probability (0.95 for a 5%-significance per-interval test)?"""

    successes: int
    trials: int
    expected_p: float
    probability: float  # P[K <= successes] under the null

    @property
    def consistent(self) -> bool:
        """False when so few intervals passed that the null is rejected
        with 95% confidence (lower-tail probability < 5%)."""
        return self.probability >= 0.05

    @property
    def pass_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0


def pass_rate_verdict(successes: int, trials: int, expected_p: float = 0.95) -> PassRateVerdict:
    """Appendix A: "If we find that the probability of observing K successes
    was less than 5%, then we conclude with 95% confidence that the arrival
    process is inconsistent" with the per-interval null."""
    _check(successes, trials)
    return PassRateVerdict(
        successes=successes,
        trials=trials,
        expected_p=expected_p,
        probability=binomial_lower_tail(successes, trials, expected_p),
    )


@dataclass(frozen=True)
class SignBiasVerdict:
    """Are lag-1 autocorrelation signs consistent with a fair coin?"""

    positives: int
    negatives: int

    @property
    def trials(self) -> int:
        return self.positives + self.negatives

    @property
    def positively_biased(self) -> bool:
        """P[#positive >= observed] < 2.5% under Binomial(n, 0.5)."""
        if self.trials == 0:
            return False
        return binomial_upper_tail(self.positives, self.trials, 0.5) < 0.025

    @property
    def negatively_biased(self) -> bool:
        if self.trials == 0:
            return False
        return binomial_upper_tail(self.negatives, self.trials, 0.5) < 0.025

    @property
    def label(self) -> str:
        """'+', '-', or '' — the annotation used in Fig. 2."""
        if self.positively_biased:
            return "+"
        if self.negatively_biased:
            return "-"
        return ""


def sign_bias_verdict(signs) -> SignBiasVerdict:
    """Classify a collection of +1/-1 correlation signs (zeros ignored)."""
    pos = sum(1 for s in signs if s > 0)
    neg = sum(1 for s in signs if s < 0)
    return SignBiasVerdict(positives=pos, negatives=neg)


def _check(successes: int, trials: int) -> None:
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
