#!/usr/bin/env python3
"""Section VII + Appendices C-E workflow: large-scale correlations.

* synthesize exact fractional Gaussian noise and verify the estimator
  battery (variance-time, Whittle, R/S, log-periodogram, Beran's GOF);
* build self-similar traffic two ways: heavy-tailed ON/OFF multiplexing and
  the M/G/infinity queue with Pareto service;
* contrast with log-normal service (subexponential but NOT long-range
  dependent, Appendix E);
* show the pseudo-self-similarity of i.i.d. Pareto interarrivals across a
  1000x change of time scale (Figs. 14-15 / Appendix C).

Run:  python examples/selfsimilarity_survey.py
"""

import numpy as np

from repro.arrivals import (
    burst_lull_summary,
    expected_hurst,
    multiplex_onoff,
    pareto_mg_infinity,
    pareto_renewal_counts,
)
from repro.experiments import appendix_e
from repro.selfsim import CountProcess, fgn_sample, hurst_panel


def main() -> None:
    print("== Estimator battery on exact fGn (H = 0.8) ==")
    x = fgn_sample(16384, hurst=0.8, seed=1) + 50.0
    panel = hurst_panel(CountProcess(x, 0.1), seed=2)
    for name, h in panel.estimates.items():
        print(f"   {name:14s} H = {h:.3f}")
    print(f"   Beran GOF p-value {panel.gof.p_value:.3f} -> "
          f"{'consistent with fGn' if panel.consistent_with_fgn else 'rejected'}")
    print()

    print("== Construction 1: heavy-tailed ON/OFF sources ==")
    counts = multiplex_onoff(50, 4096, 1.0, seed=3)
    p = hurst_panel(counts, seed=4)
    print(f"   50 Pareto(1.2) ON/OFF sources: median H = {p.median_hurst:.2f} "
          f"(limit theory: H = {expected_hurst(1.2, 1.2):.2f})")
    print()

    print("== Construction 2: M/G/infinity with Pareto(1.5) service ==")
    q = pareto_mg_infinity(rho=5.0, location=1.0, shape=1.5)
    xs = q.simulate(16384, dt=1.0, seed=5, warmup=30000.0).astype(float)
    p = hurst_panel(xs, seed=6)
    print(f"   median H = {p.median_hurst:.2f} (asymptotic theory: 0.75); "
          f"marginal mean {xs.mean():.1f} vs rho*E[S] = {q.stationary_mean:.1f}")
    print()

    print("== Appendix E: log-normal service is NOT long-range dependent ==")
    r = appendix_e()
    print(r.render())
    print()

    print("== Appendix C / Figs. 14-15: pseudo-self-similarity ==")
    for b in (1e3, 1e6):
        c = pareto_renewal_counts(1000, b, shape=1.0, seed=7)
        s = burst_lull_summary(c)
        print(f"   b = {b:8.0f}: mean burst {s.mean_burst:5.2f} bins, "
              f"median lull "
              f"{np.median(s.lull_lengths) if s.lull_lengths.size else 0:5.1f} "
              f"bins, occupied {100 * s.occupied_fraction:4.1f}%")
    print("   (burst length grows only ~logarithmically; lulls are "
          "scale-invariant — the process *looks* self-similar at every "
          "scale even though it is not truly LRD)")


if __name__ == "__main__":
    main()
