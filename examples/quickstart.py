#!/usr/bin/env python3
"""Quickstart: the paper's three headline results in ~60 seconds.

1. User-session (TELNET) connection arrivals pass the Poisson tests;
   machine-driven (NNTP) arrivals fail them.          (Section III)
2. Exponential interarrivals grievously underestimate TELNET packet
   burstiness; the Tcplib distribution preserves it.  (Section IV)
3. FTPDATA bytes concentrate in a tiny fraction of huge bursts.
                                                       (Section VI)

Run:  python examples/quickstart.py
"""

from repro.core import FtpSessionModel, Scheme, multiplexed_telnet, trace_bursts
from repro.stats import evaluate_arrival_process, top_fraction_share
from repro.traces import ConnectionTrace, synthesize_connection_trace


def main() -> None:
    hours = 24
    trace = synthesize_connection_trace("LBL-1", seed=42, hours=hours)
    print(f"Synthesized {trace.name}: {len(trace)} connections over {hours} h")
    print()

    # -- 1. Poisson or not? ------------------------------------------------
    print("1. Appendix A Poisson tests (one-hour fixed rates):")
    for protocol in ("TELNET", "FTP", "NNTP", "FTPDATA"):
        result = evaluate_arrival_process(
            trace.arrival_times(protocol), 3600.0, start=0.0,
            end=hours * 3600.0,
        )
        verdict = "POISSON" if result.poisson_consistent else "not Poisson"
        print(
            f"   {protocol:8s} exp-test {100 * result.exponential_pass_rate:5.1f}% "
            f"indep-test {100 * result.independence_pass_rate:5.1f}% "
            f"-> {verdict}{result.correlation_label}"
        )
    print()

    # -- 2. TELNET burstiness ----------------------------------------------
    print("2. 100 multiplexed TELNET sources, packets per 1 s bin:")
    for scheme in (Scheme.TCPLIB, Scheme.EXP):
        mux = multiplexed_telnet(100, 600.0, scheme, seed=7)
        print(f"   {scheme.value:7s} mean {mux.mean:5.1f}  variance {mux.variance:6.1f}")
    print("   (paper: means ~92 for both, variances 240 vs 97)")
    print()

    # -- 3. FTP heavy tails -------------------------------------------------
    records = FtpSessionModel(sessions_per_hour=200.0).synthesize(
        24 * 3600.0, seed=3
    )
    bursts = trace_bursts(ConnectionTrace("ftp", records))
    sizes = [b.total_bytes for b in bursts]
    share = top_fraction_share(sizes, 0.005)
    print(f"3. {len(bursts)} FTPDATA bursts; top 0.5% holds "
          f"{100 * share:.0f}% of all bytes (paper: 30-60%; "
          f"exponential would hold ~3%)")


if __name__ == "__main__":
    main()
