#!/usr/bin/env python3
"""Run the complete reproduction and write REPORT.txt.

Executes every experiment in the registry (all tables, figures, appendices,
and extension experiments), prints each one's rendered rows/series, and
saves the combined output next to this script.  Equivalent to
``python -m repro run all`` with the output captured.

Run:  python examples/full_reproduction.py [--seed N] [--out PATH]
"""

import argparse
import io
import time
from contextlib import redirect_stdout

from repro.cli import run_experiment
from repro.experiments import REGISTRY


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="REPORT.txt")
    args = parser.parse_args()

    buffer = io.StringIO()
    t0 = time.perf_counter()
    failures = []
    for name in sorted(REGISTRY):
        header = f"===== {name} ====="
        print(header)
        section = io.StringIO()
        try:
            with redirect_stdout(section):
                run_experiment(name, args.seed)
        except Exception as exc:  # record, keep going
            section.write(f"FAILED: {exc}\n")
            failures.append(name)
        text = section.getvalue()
        print(text)
        buffer.write(header + "\n" + text + "\n")
    elapsed = time.perf_counter() - t0

    summary = (
        f"\n{len(REGISTRY) - len(failures)}/{len(REGISTRY)} experiments "
        f"completed in {elapsed:.0f}s"
        + (f"; failed: {', '.join(failures)}" if failures else "")
    )
    print(summary)
    with open(args.out, "w") as fh:
        fh.write(buffer.getvalue() + summary + "\n")
    print(f"report written to {args.out}")


if __name__ == "__main__":
    main()
