#!/usr/bin/env python3
"""Sections VII-C-2 and VIII workflow: TCP dynamics and why LRD matters.

* simulate bulk transfers through a Reno/drop-tail bottleneck and watch the
  congestion-window sawtooth, self-clocking, and RTT unfairness the paper
  says separate real FTP traffic from the constant-rate M/G/inf ideal;
* compare M/G/k against M/G/inf — finite capacity does not erase the
  large-scale correlations;
* quantify two Section VIII warnings: priority starvation and misled
  measurement-based admission control under LRD traffic.

Run:  python examples/tcp_and_implications.py
"""

import numpy as np

from repro.experiments import (
    admission_comparison,
    mgk_comparison,
    priority_starvation,
)
from repro.tcp import BottleneckSimulator, TransferSpec


def main() -> None:
    print("== TCP Reno over a shared drop-tail bottleneck ==")
    sim = BottleneckSimulator(rate=400.0, buffer_packets=8)
    specs = [
        TransferSpec(0.0, 6000, rtt=0.05, max_window=64),
        TransferSpec(0.0, 6000, rtt=0.20, max_window=64),
        TransferSpec(5.0, 3000, rtt=0.10, max_window=64),
    ]
    res = sim.run(specs)
    for i, t in enumerate(res.transfers):
        cw = np.array([c for _, c in t.cwnd_trace])
        print(f"   conn {i}: rtt {t.spec.rtt * 1000:3.0f} ms  "
              f"throughput {t.throughput:6.1f} pkt/s  drops "
              f"{t.packets_dropped:3d}  cwnd range "
              f"[{cw.min():.0f}, {cw.max():.0f}]")
    print(f"   total drops {res.total_drops}; shorter-RTT connections win "
          f"bandwidth (the paper's point about unequal rates)")
    gaps = np.diff(res.departure_times)
    busy = gaps[gaps < 0.01]
    print(f"   self-clocking: {busy.size} departures one service time "
          f"apart (median gap {1000 * np.median(busy):.1f} ms)")
    print()

    print("== M/G/k vs M/G/inf (Section VII-C-2) ==")
    print(mgk_comparison(seed=0).render())
    print()

    print("== Section VIII: priority starvation ==")
    print(priority_starvation(seed=0).render())
    print()

    print("== Section VIII: admission control under LRD ==")
    print(admission_comparison(seed=0).render())


if __name__ == "__main__":
    main()
