#!/usr/bin/env python3
"""Sections IV-V workflow: modeling TELNET originator traffic.

* Fig. 3: Tcplib vs exponential interarrival CDFs;
* Fig. 4: single-connection clustering + the multiplexing experiment;
* Figs. 5-7: variance-time comparison of the synthesis schemes and the
  FULL-TEL model;
* the queueing-delay consequence of getting the interarrivals wrong.

Run:  python examples/telnet_source_modeling.py
"""

from repro.core import FullTelModel
from repro.experiments import delay_experiment, fig03, fig04, fig05, fig06, fig07
from repro.selfsim import variance_time_curve


def main() -> None:
    print("== Fig. 3: interarrival distributions ==")
    r3 = fig03(seed=0, duration=7200.0)
    print(f"trace mean {r3.trace_mean:.2f} s, geometric mean "
          f"{r3.trace_geometric_mean:.2f} s over {r3.n_gaps} gaps")
    print(f"max |Tcplib - trace| CDF gap above 0.1 s: "
          f"{r3.agreement_above_100ms:.3f}  (paper: 'quite good' agreement)")
    print()

    print("== Fig. 4: burstiness of a single connection + multiplexing ==")
    r4 = fig04(seed=2)
    print(r4.render())
    print(f"variance ratio {r4.variance_ratio:.2f} (paper: 240/97 ~ 2.5)")
    print()

    print("== Figs. 5-6: what each synthesis scheme does to burstiness ==")
    r5 = fig05(seed=7, duration=7200.0)
    v = r5.variance_at(50)
    print("normalized variance at M=50 (5 s):",
          {k: round(x, 3) for k, x in v.items()})
    from repro.experiments.report import ascii_loglog

    print(ascii_loglog(
        r5.levels.astype(float),
        {name: curve.variances for name, curve in r5.curves.items()},
    ))
    r6 = fig06(precomputed=r5)
    print(f"5 s-bin variance: trace {r6.trace_variance:.0f} vs exponential "
          f"{r6.exp_variance:.0f} at matched mean ~{r6.trace_mean:.0f} "
          f"(paper: 672 vs 260 at mean ~58)")
    print()

    print("== Fig. 7: FULL-TEL, a one-parameter TELNET model ==")
    r7 = fig07(seed=4)
    print(f"max log10 variance gap, model vs trace: "
          f"{r7.max_log_gap(max_level=500):.3f} (agreement 'quite good')")
    model = FullTelModel(connections_per_hour=136.5)
    cp = model.count_process(3600.0, bin_width=1.0, seed=11)
    curve = variance_time_curve(cp)
    print(f"FULL-TEL variance-time slope: {curve.slope(min_level=5):.2f} "
          f"(Poisson would be -1.0)")
    print()

    print("== The cost of Poisson mis-modeling: queueing delay ==")
    d = delay_experiment(seed=3, n_connections=60, duration=900.0,
                         utilization=0.85)
    print(d.render())


if __name__ == "__main__":
    main()
