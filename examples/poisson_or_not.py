#!/usr/bin/env python3
"""Section III workflow: which arrival processes are Poisson?

Reproduces the Fig. 2 analysis over a subset of the synthetic trace suite:
per-protocol, per-interval-length Anderson-Darling + independence testing
with binomial roll-ups, then a side experiment on the RLOGIN-vs-X11
distinction (session arrivals vs within-session connection arrivals).

Run:  python examples/poisson_or_not.py [trace ...]
"""

import sys

from repro.experiments import fig02
from repro.stats import evaluate_arrival_process
from repro.traces import synthesize_connection_trace


def main(traces) -> None:
    print("Running the Appendix A methodology over", ", ".join(traces))
    print()
    result = fig02(seed=0, traces=tuple(traces), hours=48)
    print(result.render())
    print()

    print("Paper's dichotomy check:")
    for proto in ("TELNET", "FTP", "FTPDATA", "SMTP", "NNTP"):
        rate = result.consistency_rate(proto, 3600.0)
        expected = "Poisson" if proto in ("TELNET", "FTP") else "not Poisson"
        print(f"   {proto:8s} hourly-Poisson on {100 * rate:3.0f}% of traces "
              f"(paper: {expected})")
    print()

    # RLOGIN vs X11: sessions are Poisson, within-session connections not.
    trace = synthesize_connection_trace("UCB", seed=5, hours=24)
    for proto, expectation in (("RLOGIN", "Poisson (a session = a user)"),
                               ("X11", "not Poisson (connections within a session)")):
        times = trace.arrival_times(proto)
        if times.size < 50:
            continue
        res = evaluate_arrival_process(times, 3600.0, start=0.0,
                                       end=24 * 3600.0)
        verdict = "POISSON" if res.poisson_consistent else "not Poisson"
        print(f"   {proto:7s} -> {verdict}   (paper: {expectation})")


if __name__ == "__main__":
    main(sys.argv[1:] or ["LBL-1", "LBL-2", "UK"])
