#!/usr/bin/env python3
"""Distribution-fitting walkthrough: the paper's model adjudications.

Reruns the paper's three fitting decisions on synthetic data:

* Section V: TELNET connection *bytes* fit a log-extreme distribution;
  connection *packets* fit a log2-normal better;
* Section IV: the TELNET interarrival body fits a Pareto (beta ~ 0.9) and
  the upper 3% tail a Pareto with beta ~ 0.95 — nothing exponential;
* Section VI: intra-session FTPDATA spacings are "better approximated using
  a log-normal or log-logistic distribution" than an exponential, and
  FTPDATA burst sizes have a Pareto upper tail with 0.9 <= beta <= 1.4.

Run:  python examples/distribution_fitting.py
"""

import numpy as np

from repro.core import FtpSessionModel, intra_session_spacings, trace_bursts
from repro.distributions import hill_estimator, tcplib
from repro.experiments.report import format_table
from repro.stats.fitting import compare_fits
from repro.traces import ConnectionTrace


def show(title, samples, candidates):
    reports = compare_fits(samples, candidates)
    print(format_table([r.row() for r in reports], title=title))
    print(f"-> best by KS: {reports[0].name}")
    print()


def main() -> None:
    rng = np.random.default_rng(7)

    # -- Section V: bytes vs packets -----------------------------------
    bytes_sample = tcplib.telnet_connection_bytes().sample(30000, seed=1)
    bytes_sample = bytes_sample[bytes_sample < 1e7]  # month-trace outliers
    show("TELNET connection bytes (paper: log-extreme wins)",
         bytes_sample, ["log-extreme", "log2-normal", "exponential"])

    packets_sample = tcplib.telnet_connection_packets().sample(30000, seed=2)
    show("TELNET connection packets (paper: log2-normal wins)",
         packets_sample, ["log-extreme", "log2-normal", "exponential"])

    # -- Section IV: interarrival tails ---------------------------------
    gaps = tcplib.telnet_packet_interarrival().sample(200000, seed=3)
    body = gaps[(gaps > np.quantile(gaps, 0.05)) & (gaps < np.quantile(gaps, 0.97))]
    k_tail = int(0.03 * gaps.size)
    beta_tail = hill_estimator(gaps, k_tail)
    print(f"TELNET interarrivals: upper-3%-tail Pareto beta = "
          f"{beta_tail:.2f} (paper: ~0.95)")
    show("TELNET interarrival body (paper: Pareto, decidedly not exponential)",
         body, ["exponential", "pareto", "log2-normal"])

    # -- Section VI: spacings and burst sizes ----------------------------
    records = FtpSessionModel(sessions_per_hour=250.0).synthesize(
        12 * 3600.0, seed=4
    )
    trace = ConnectionTrace("ftp", records)
    spacings = intra_session_spacings(trace)
    spacings = spacings[spacings > 0]
    show("FTPDATA intra-session spacings (paper: log-normal / log-logistic "
         "beat exponential)",
         spacings, ["exponential", "log2-normal", "log-logistic"])

    sizes = np.array([b.total_bytes for b in trace_bursts(trace)], dtype=float)
    k = max(2, int(0.05 * sizes.size))
    print(f"FTPDATA burst sizes: upper-5%-tail Pareto beta = "
          f"{hill_estimator(sizes, k):.2f} (paper: 0.9 <= beta <= 1.4)")


if __name__ == "__main__":
    main()
