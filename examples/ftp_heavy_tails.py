#!/usr/bin/env python3
"""Section VI workflow: FTPDATA burst structure and heavy tails.

* coalesce FTPDATA connections into bursts with the 4 s spacing rule
  (and show the 2 s footnote robustness check);
* Fig. 8: the bimodal intra-session spacing distribution;
* Fig. 9: byte concentration in the largest bursts + Pareto tail fit;
* the burst arrivals themselves are not Poisson even after removing the
  daily rate cycle.

Run:  python examples/ftp_heavy_tails.py
"""

import numpy as np

from repro.core import (
    FtpSessionModel,
    burst_tail_summary,
    coalesce_bursts,
    intra_session_spacings,
    trace_bursts,
)
from repro.stats import evaluate_interval, exponential_top_share
from repro.traces import ConnectionTrace


def main() -> None:
    model = FtpSessionModel(sessions_per_hour=300.0)
    records = model.synthesize(24 * 3600.0, seed=1)
    trace = ConnectionTrace("ftp-day", records)
    n_data = trace.connection_count("FTPDATA")
    print(f"Generated {n_data} FTPDATA connections in "
          f"{len(trace.sessions('FTPDATA'))} FTP sessions")
    print()

    # -- spacing distribution (Fig. 8) --------------------------------------
    spacings = intra_session_spacings(trace)
    below = float(np.mean(spacings <= 4.0))
    print(f"intra-session spacings: {100 * below:.0f}% within the 4 s burst "
          f"cutoff; 95th percentile {np.quantile(spacings, 0.95):.0f} s "
          f"(bimodal, heavy upper tail)")
    print()

    # -- burst coalescing + the footnote robustness check -------------------
    bursts4 = trace_bursts(trace, spacing=4.0)
    bursts2 = trace_bursts(trace, spacing=2.0)
    print(f"bursts at 4 s cutoff: {len(bursts4)}; at 2 s cutoff: "
          f"{len(bursts2)} (paper: 'virtually identical results')")

    # -- Fig. 9 concentration ------------------------------------------------
    summary = burst_tail_summary(bursts4)
    print(f"top 0.5% of bursts holds {100 * summary.share_top_half_percent:.0f}% "
          f"of bytes; top 2% holds {100 * summary.share_top_two_percent:.0f}% "
          f"(paper: 30-60% and ~55%+; exponential: "
          f"{100 * exponential_top_share(0.005):.1f}%)")
    if summary.tail_shape is not None:
        print(f"Pareto fit of the upper 5% tail: beta = {summary.tail_shape:.2f} "
              f"(paper: 0.9 <= beta <= 1.4)")
    print()

    # -- connections per burst are power-law too ----------------------------
    conns = np.array([b.n_connections for b in bursts4])
    print(f"connections per burst: median {np.median(conns):.0f}, "
          f"max {conns.max()} (paper saw a single 979-connection burst)")
    print()

    # -- burst arrivals are not Poisson, even index-spaced -------------------
    sizes = np.array([b.total_bytes for b in bursts4], dtype=float)
    starts = np.array([b.start_time for b in bursts4])
    k = max(3, int(0.005 * sizes.size))
    top_idx = np.argsort(sizes)[-k:]
    positions = np.sort(np.argsort(np.argsort(starts))[top_idx]).astype(float)
    outcome = evaluate_interval(positions)
    print(f"upper-0.5%-tail burst arrivals (index-spaced, removing the daily "
          f"cycle): exponential-interarrival test "
          f"{'passed' if outcome.exponential_passed else 'FAILED'}")
    print("   (paper: failed at all significance levels — real huge bursts "
          "cluster; our sessions arrive Poisson by construction, so the "
          "synthetic suite diverges here: see EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
