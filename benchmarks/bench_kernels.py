"""Micro-benchmarks of the library's hot kernels.

Two faces:

* **pytest-benchmark micro-tests** (run with
  ``pytest benchmarks/bench_kernels.py --benchmark-only``) giving timing
  statistics for the primitives the experiments lean on;
* **a CLI** (``PYTHONPATH=src python benchmarks/bench_kernels.py``) that
  times every vectorized kernel against its frozen pre-PR loop from
  :mod:`repro.kernels.reference`, verifies the equivalence claim for each,
  and records the before/after baseline in ``BENCH_kernels.json``.
  ``--check BASELINE`` compares the *normalized* ratio
  ``vectorized/loop`` against the recorded one and fails when any kernel
  regressed past 1.5x — machine-independent, so CI can enforce it on
  whatever hardware it gets.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arrivals import homogeneous_poisson
from repro.arrivals.cluster import compound_poisson_cluster
from repro.arrivals.onoff import OnOffSource
from repro.core import coalesce_bursts
from repro.core.ftp import FtpSessionModel
from repro.core.fulltel import FullTelModel
from repro.core.telnet import ConnectionSpec, Scheme, synthesize_packet_arrivals
from repro.distributions import tcplib
from repro.distributions.exponential import Exponential
from repro.distributions.pareto import Pareto
from repro.kernels import lindley_waits
from repro.kernels import reference as ref
from repro.selfsim import (
    CountProcess,
    farima_autocovariance,
    fgn_sample,
    variance_time_curve,
    whittle_estimate,
)
from repro.selfsim.rs_analysis import rs_analysis
from repro.stats import anderson_darling_exponential
from repro.utils import bin_counts

# ----------------------------------------------------------------------
# pytest-benchmark micro-tests
# ----------------------------------------------------------------------


def test_kernel_fgn_synthesis(benchmark):
    result = benchmark(fgn_sample, 16384, 0.8, seed=1)
    assert result.size == 16384


def test_kernel_variance_time(benchmark):
    rng = np.random.default_rng(2)
    cp = CountProcess(rng.poisson(10, 50000).astype(float), 0.1)
    curve = benchmark(variance_time_curve, cp)
    assert curve.levels.size > 5


def test_kernel_anderson_darling(benchmark):
    rng = np.random.default_rng(3)
    x = rng.exponential(1.0, 5000)
    result = benchmark(anderson_darling_exponential, x)
    assert result.n == 5000


def test_kernel_whittle(benchmark):
    x = fgn_sample(8192, 0.75, seed=4)
    result = benchmark(whittle_estimate, x)
    assert 0.6 < result.hurst < 0.9


def test_kernel_tcplib_sampling(benchmark):
    dist = tcplib.telnet_packet_interarrival()
    s = benchmark(dist.sample, 100000, seed=5)
    assert s.size == 100000


def test_kernel_binning(benchmark):
    times = homogeneous_poisson(100.0, 10000.0, seed=6)
    counts = benchmark(bin_counts, times, 0.1, 0.0, 10000.0)
    assert counts.sum() == times.size


def test_kernel_burst_coalescing(benchmark):
    rng = np.random.default_rng(7)
    starts = np.sort(rng.uniform(0, 10000, 5000))
    durs = rng.exponential(2.0, 5000)
    sizes = rng.integers(1, 10**6, 5000)
    bursts = benchmark(coalesce_bursts, starts, durs, sizes)
    assert sum(b.n_connections for b in bursts) == 5000


def _lindley_inputs(n, seed=8):
    rng = np.random.default_rng(seed)
    s = rng.integers(0, 12, n).astype(float)
    a = rng.integers(0, 14, n - 1).astype(float)
    return s, a


def test_kernel_lindley_loop(benchmark):
    s, a = _lindley_inputs(200_000)
    w = benchmark(ref.lindley_waits_loop, s, a)
    assert w.size == s.size


def test_kernel_lindley_vectorized(benchmark):
    s, a = _lindley_inputs(200_000)
    w = benchmark(lindley_waits, s, a)
    assert np.array_equal(w, ref.lindley_waits_loop(s, a))


def test_kernel_telnet_batched(benchmark):
    specs = [ConnectionSpec(float(i), 40) for i in range(500)]
    times, ids = benchmark(
        synthesize_packet_arrivals, specs, Scheme.TCPLIB, seed=9
    )
    assert times.size == 500 * 40


# ----------------------------------------------------------------------
# CLI: loop-vs-vectorized baseline for BENCH_kernels.json
# ----------------------------------------------------------------------
class _Const:
    """Order-free deterministic distribution: consumes the stream like a
    real one but ignores draw order, isolating assembly equivalence for
    kernels whose RNG-stream contract changed."""

    def __init__(self, v):
        self.v = v

    def sample(self, n, seed=None):
        if seed is not None and hasattr(seed, "random"):
            seed.random(n)
        return np.full(n, self.v)


def _time(fn, repeats):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _traces_equal(a, b):
    return (np.array_equal(a.timestamps, b.timestamps)
            and np.array_equal(a.connection_ids, b.connection_ids)
            and np.array_equal(a.sizes, b.sizes))


def kernel_cases(scale):
    """Yield (name, n, loop_fn, vectorized_fn, identical_fn, identity)."""
    full = scale == "full"

    n = 5_000_000 if full else 200_000
    s, a = _lindley_inputs(n)
    yield ("lindley_fifo", n,
           lambda: ref.lindley_waits_loop(s, a),
           lambda: lindley_waits(s, a),
           lambda loop, vec: np.array_equal(loop, vec),
           "bit-identical (integer-valued draws)")

    lag = 200_000 if full else 20_000
    yield ("farima_autocovariance", lag,
           lambda: ref.farima_autocovariance_loop(0.3, lag),
           lambda: farima_autocovariance(0.3, lag),
           lambda loop, vec: bool(np.allclose(loop, vec, rtol=1e-12)),
           "allclose vs historical division order; "
           "bit-identical to the ratio-ordered recursion")

    n_conns = 3000 if full else 300
    specs = [ConnectionSpec(float(i) * 0.5, 40) for i in range(n_conns)]
    yield ("telnet_synthesize", n_conns * 40,
           lambda: ref.synthesize_packet_arrivals_loop(specs, Scheme.TCPLIB, 5),
           lambda: synthesize_packet_arrivals(specs, Scheme.TCPLIB, seed=5),
           lambda loop, vec: (np.array_equal(loop[0], vec[0])
                              and np.array_equal(loop[1], vec[1])),
           "bit-identical (shared-stream contract unchanged)")

    ft_dur = 4 * 3600.0 if full else 1800.0
    ft = FullTelModel(connections_per_hour=400.0)
    ft_packets = ft.synthesize(ft_dur, seed=3).timestamps.size
    yield ("fulltel_synthesize", ft_packets,
           lambda: ref.fulltel_synthesize_loop(ft, ft_dur, 3),
           lambda: ft.synthesize(ft_dur, seed=3, batch=True),
           lambda loop, vec: _traces_equal(
               vec, ft.synthesize(ft_dur, seed=3, batch=False)),
           "batch == per-connection loop on identical child streams "
           "(pre-PR shared-stream loop timed as baseline)")

    ftp_dur = 24 * 3600.0 if full else 2 * 3600.0
    fm = FtpSessionModel(sessions_per_hour=150.0)
    ftp_records = len(fm.synthesize(ftp_dur, seed=4))
    yield ("ftp_synthesize", ftp_records,
           lambda: ref.ftp_synthesize_loop(fm, ftp_dur, 4),
           lambda: fm.synthesize(ftp_dur, seed=4, batch=True),
           lambda loop, vec: vec == fm.synthesize(ftp_dur, seed=4, batch=False),
           "batch == per-session loop on identical child streams "
           "(pre-PR shared-stream loop timed as baseline)")

    n = 2_000_000 if full else 100_000
    rng = np.random.default_rng(11)
    cb_s = np.cumsum(rng.exponential(2.0, n))
    cb_d = rng.exponential(3.0, n)
    cb_b = rng.integers(1, 10**6, n)
    yield ("coalesce_bursts", n,
           lambda: ref.coalesce_bursts_loop(cb_s, cb_d, cb_b),
           lambda: coalesce_bursts(cb_s, cb_d, cb_b),
           lambda loop, vec: loop == vec,
           "bit-identical burst boundaries")

    n = 2**20 if full else 2**16
    series = np.diff(np.random.default_rng(12).normal(size=n + 1).cumsum())
    rs_sizes = np.unique(
        np.round(np.geomspace(8, series.size // 4, 12)).astype(int)
    )
    yield ("rs_analysis", n,
           lambda: ref.rs_means_loop(series, rs_sizes, 50, 0),
           lambda: rs_analysis(series, seed=0),
           lambda loop, vec: (np.array_equal(vec.block_sizes, loop[0])
                              and np.array_equal(vec.rs_values, loop[1])),
           "bit-identical per-size R/S means")

    dur = 50_000.0 if full else 5_000.0
    size_d, gap_d = Pareto(1.0, 1.5), Exponential(0.1)
    yield ("cluster_arrivals", int(dur),
           lambda: ref.compound_poisson_cluster_loop(2.0, dur, size_d, gap_d, 6),
           lambda: compound_poisson_cluster(2.0, dur, size_d, gap_d, seed=6),
           lambda loop, vec: np.array_equal(
               compound_poisson_cluster(0.5, 500.0, _Const(3.4), _Const(0.2),
                                        seed=1),
               ref.compound_poisson_cluster_loop(0.5, 500.0, _Const(3.4),
                                                 _Const(0.2), 1)),
           "assembly bit-identical (checked with order-free draws; "
           "batched draw order changes real-dist streams)")

    dur = 200_000.0 if full else 20_000.0
    src = OnOffSource.pareto()
    cs = OnOffSource(_Const(2.0), _Const(3.0))
    yield ("onoff_intervals", int(dur),
           lambda: ref.onoff_intervals_loop(src, dur, 7, True),
           lambda: src.intervals(dur, seed=7, start_on=True),
           lambda loop, vec: (cs.intervals(1000.0, seed=1, start_on=True)
                              == ref.onoff_intervals_loop(cs, 1000.0, 1, True)),
           "assembly bit-identical (checked with order-free draws; "
           "blocked draw order changes real-dist streams)")


def run_suite(scale, repeats):
    results = {}
    for name, n, loop_fn, vec_fn, identical_fn, identity in kernel_cases(scale):
        loop_s, loop_out = _time(loop_fn, repeats)
        vec_s, vec_out = _time(vec_fn, repeats)
        identical = bool(identical_fn(loop_out, vec_out))
        results[name] = {
            "n": int(n),
            "loop_s": round(loop_s, 6),
            "vectorized_s": round(vec_s, 6),
            "speedup": round(loop_s / vec_s, 2) if vec_s > 0 else None,
            "identical": identical,
            "identity": identity,
        }
        print(f"{name:24s} n={n:>9d}  loop {loop_s:9.4f}s  "
              f"vec {vec_s:9.4f}s  x{loop_s / vec_s:8.1f}  "
              f"{'OK' if identical else 'MISMATCH'}")
    return results


def check_against(baseline_path, scale, results, factor=1.5):
    """Fail when any kernel's vectorized/loop ratio regressed past
    ``factor`` x the recorded one (normalized, so machine speed cancels)."""
    payload = json.loads(Path(baseline_path).read_text())
    base = payload.get("scales", {}).get(scale)
    if base is None:
        raise SystemExit(f"baseline {baseline_path} has no '{scale}' scale")
    failures = []
    for name, now in results.items():
        if not now["identical"]:
            failures.append(f"{name}: equivalence check failed")
            continue
        then = base.get(name)
        if then is None:
            continue  # new kernel: no baseline yet
        ratio_now = now["vectorized_s"] / now["loop_s"]
        ratio_then = then["vectorized_s"] / then["loop_s"]
        if now["vectorized_s"] < 0.005 and ratio_now < 1.0:
            # Sub-5ms kernels sit at timer resolution: their ratio is all
            # jitter.  As long as they still beat the loop, they pass.
            continue
        if ratio_now > factor * ratio_then:
            failures.append(
                f"{name}: vectorized/loop ratio {ratio_now:.4f} exceeds "
                f"{factor}x baseline {ratio_then:.4f}"
            )
    if failures:
        raise SystemExit("kernel benchmark regressions:\n  "
                         + "\n  ".join(failures))
    print(f"check passed: no kernel slower than {factor}x its recorded ratio")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=str(Path(__file__).parent
                                             / "BENCH_kernels.json"))
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a recorded baseline and fail "
                             "on >1.5x normalized regressions")
    args = parser.parse_args(argv)

    results = run_suite(args.scale, args.repeats)
    if args.check:
        check_against(args.check, args.scale, results)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = (json.loads(out.read_text())
               if out.exists() else {"script": "benchmarks/bench_kernels.py"})
    payload.setdefault("scales", {})[args.scale] = results
    payload["repeats"] = args.repeats
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
