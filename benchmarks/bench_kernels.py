"""Micro-benchmarks of the library's hot kernels.

Unlike the per-figure benches (one shot, assert the paper's shape), these
run multiple rounds to give real timing statistics for the primitives the
experiments lean on: fGn synthesis, the variance-time sweep, the
Anderson-Darling test, Whittle estimation, trace binning, and burst
coalescing.
"""

import numpy as np

from repro.arrivals import homogeneous_poisson
from repro.core import coalesce_bursts
from repro.distributions import tcplib
from repro.selfsim import CountProcess, fgn_sample, variance_time_curve, whittle_estimate
from repro.stats import anderson_darling_exponential
from repro.utils import bin_counts


def test_kernel_fgn_synthesis(benchmark):
    result = benchmark(fgn_sample, 16384, 0.8, seed=1)
    assert result.size == 16384


def test_kernel_variance_time(benchmark):
    rng = np.random.default_rng(2)
    cp = CountProcess(rng.poisson(10, 50000).astype(float), 0.1)
    curve = benchmark(variance_time_curve, cp)
    assert curve.levels.size > 5


def test_kernel_anderson_darling(benchmark):
    rng = np.random.default_rng(3)
    x = rng.exponential(1.0, 5000)
    result = benchmark(anderson_darling_exponential, x)
    assert result.n == 5000


def test_kernel_whittle(benchmark):
    x = fgn_sample(8192, 0.75, seed=4)
    result = benchmark(whittle_estimate, x)
    assert 0.6 < result.hurst < 0.9


def test_kernel_tcplib_sampling(benchmark):
    dist = tcplib.telnet_packet_interarrival()
    s = benchmark(dist.sample, 100000, seed=5)
    assert s.size == 100000


def test_kernel_binning(benchmark):
    times = homogeneous_poisson(100.0, 10000.0, seed=6)
    counts = benchmark(bin_counts, times, 0.1, 0.0, 10000.0)
    assert counts.sum() == times.size


def test_kernel_burst_coalescing(benchmark):
    rng = np.random.default_rng(7)
    starts = np.sort(rng.uniform(0, 10000, 5000))
    durs = rng.exponential(2.0, 5000)
    sizes = rng.integers(1, 10**6, 5000)
    bursts = benchmark(coalesce_bursts, starts, durs, sizes)
    assert sum(b.n_connections for b in bursts) == 5000
