"""Section VIII implications + Section VII-C-2 ablations.

Ablation benches for the design choices DESIGN.md calls out: what happens
to the paper's conclusions when the high-priority class is LRD vs Poisson,
when admission control measures an LRD background, when FTPDATA timing is
TCP-shaped rather than constant-rate, and when M/G/inf capacity is cut to
k servers.
"""

from conftest import emit

from repro.experiments import (
    admission_comparison,
    mgk_comparison,
    priority_starvation,
    tcp_dynamics,
)


def test_priority_starvation(run_once):
    result = run_once(priority_starvation, seed=0)
    emit(result)
    assert result.starvation_ratio > 2.0
    assert result.lrd.p99_low_delay > result.poisson.p99_low_delay


def test_admission_control(run_once):
    result = run_once(admission_comparison, seed=0)
    emit(result)
    assert result.lrd.misled_rate > 2.0 * max(result.poisson.misled_rate, 0.005)


def test_tcp_dynamics_ablation(run_once):
    result = run_once(tcp_dynamics, seed=0)
    emit(result)
    assert result.rate_cv > 0.2                 # rates differ across conns
    assert result.within_rate_swing > 1.5       # and within one conn
    assert not result.interarrivals_exponential


def test_mgk_ablation(run_once):
    result = run_once(mgk_comparison, seed=0)
    emit(result)
    assert result.correlations_survive


def test_udp_competition(run_once):
    from repro.experiments import udp_competition

    result = run_once(udp_competition, seed=0)
    emit(result)
    assert 0.3 < result.tcp_yield_fraction < 0.7
    assert result.udp_delivery_ratio > 0.9
