"""Benchmarks of the flow-level network simulator.

Two faces, mirroring ``bench_kernels.py`` / ``bench_traces.py``:

* **pytest-benchmark micro-tests** (run with
  ``pytest benchmarks/bench_flowsim.py --benchmark-only``) timing the
  event core and the per-link array exports on their own;
* **a CLI** (``PYTHONPATH=src python benchmarks/bench_flowsim.py``) that
  times both disciplines and the end-to-end scenario, and records the
  baseline in ``BENCH_flowsim.json``.  Each case is normalized against a
  bare ``heapq`` push/pop loop over the same event count, so the recorded
  ratio is machine-independent; ``--check BASELINE`` fails when any
  case's normalized ratio regressed past 1.5x.

The ``full`` scale is the PR's acceptance target: 10^5+ flows through a
10-node topology, end to end in seconds.
"""

import argparse
import heapq
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.flowsim import FlowScenario, FlowSimulator, FlowTable
from repro.flowsim.topology import line_topology


def _flows(n, span, n_nodes, seed=0):
    rng = np.random.default_rng(seed)
    starts = np.sort(rng.uniform(0.0, span, n))
    sizes = (rng.pareto(1.1, n) + 1.0) * 20_000.0
    src = rng.integers(0, n_nodes, n)
    dst = (src + rng.integers(1, n_nodes, n)) % n_nodes
    return FlowTable.from_arrays(starts, sizes, src, dst)


def _heap_baseline(n_events):
    """Bare heapq push/pop over the same event count: the floor any
    heap-driven event core pays, used to normalize away machine speed."""
    heap = []
    t = 0.0
    for i in range(n_events):
        t += 0.001
        heapq.heappush(heap, (t + 1.0, 0, i))
        if len(heap) > 64:
            heapq.heappop(heap)
    while heap:
        heapq.heappop(heap)
    return n_events


# ----------------------------------------------------------------------
# pytest-benchmark micro-tests
# ----------------------------------------------------------------------
def test_fair_discipline_100k_flows(benchmark):
    topo = line_topology(10, loss=0.01)
    flows = _flows(100_000, 3600.0, 10)
    sim = FlowSimulator(topo, "fair")
    res = benchmark(sim.run, flows)
    assert res.n_completed == 100_000


def test_fifo_discipline_20k_flows(benchmark):
    topo = line_topology(10, loss=0.01)
    flows = _flows(20_000, 3600.0, 10)
    sim = FlowSimulator(topo, "fifo")
    res = benchmark(sim.run, flows)
    assert res.n_completed == 20_000


def test_byte_process_export(benchmark):
    topo = line_topology(10, loss=0.01)
    res = FlowSimulator(topo, "fair").run(_flows(100_000, 3600.0, 10))
    busiest = max(res.links, key=lambda s: s.n_flows)
    proc = benchmark(busiest.byte_process, 1.0, 0.0, 3600.0)
    assert proc.total > 0


# ----------------------------------------------------------------------
# CLI: normalized event-core timings for BENCH_flowsim.json
# ----------------------------------------------------------------------
def _time(fn, repeats):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def flowsim_cases(scale):
    """Yield (name, n_flows, run_fn, n_events)."""
    full = scale == "full"
    n = 100_000 if full else 20_000
    n_nodes = 10
    span = 3600.0 if full else 900.0
    topo = line_topology(n_nodes, loss=0.01)
    flows = _flows(n, span, n_nodes)

    # ~2 heap events per flow in the fair loop (open + close)
    yield ("fair_run", n,
           lambda: FlowSimulator(topo, "fair").run(flows), 2 * n)

    # fifo pays one heap event per hop; mean path length ~ n_nodes / 3
    n_fifo = n if full else n // 2
    fifo_flows = _flows(n_fifo, span, n_nodes, seed=1)
    yield ("fifo_run", n_fifo,
           lambda: FlowSimulator(topo, "fifo").run(fifo_flows),
           n_fifo * max(n_nodes // 3, 1))

    res = FlowSimulator(topo, "fair").run(flows)
    busiest = max(res.links, key=lambda s: s.n_flows)
    yield ("byte_process_export", busiest.n_flows,
           lambda: busiest.byte_process(1.0, start=0.0, end=span), 2 * n)

    sessions = 4000.0 if full else 1000.0
    scenario = FlowScenario(
        topology="line", n_nodes=n_nodes, duration=span,
        sessions_per_hour=sessions,
        bin_width=1.0 if full else 0.5,  # keep enough bins for the H fit
    )
    yield ("scenario_end_to_end", None,
           lambda: scenario.run(seed=0), 2 * n)


def run_suite(scale, repeats):
    results = {}
    for name, n, fn, n_events in flowsim_cases(scale):
        heap_s, _ = _time(lambda: _heap_baseline(n_events), repeats)
        case_s, out = _time(fn, repeats)
        row = {
            "case_s": round(case_s, 6),
            "heap_baseline_s": round(heap_s, 6),
            "ratio": round(case_s / heap_s, 3),
        }
        if n is not None:
            row["n_flows"] = int(n)
            row["flows_per_second"] = round(n / case_s, 1)
        if name == "scenario_end_to_end":
            row["n_flows"] = int(out.result.n_flows)
            row["flows_per_second"] = round(out.result.n_flows / case_s, 1)
            row["mean_hurst"] = round(out.mean_hurst, 3)
        results[name] = row
        extra = (f"  {row['flows_per_second']:>12,.0f} flows/s"
                 if "flows_per_second" in row else "")
        print(f"{name:22s} {case_s:9.4f}s  heap {heap_s:9.4f}s  "
              f"ratio {row['ratio']:8.2f}{extra}")
    return results


def check_against(baseline_path, scale, results, factor=1.5):
    """Fail when any case's heap-normalized ratio regressed past
    ``factor`` x the recorded one (machine speed cancels)."""
    payload = json.loads(Path(baseline_path).read_text())
    base = payload.get("scales", {}).get(scale)
    if base is None:
        raise SystemExit(f"baseline {baseline_path} has no '{scale}' scale")
    failures = []
    for name, now in results.items():
        then = base.get(name)
        if then is None:
            continue  # new case: no baseline yet
        if now["case_s"] < 0.005 and now["ratio"] <= then["ratio"]:
            continue  # timer-resolution noise, and not slower anyway
        if now["ratio"] > factor * then["ratio"]:
            failures.append(
                f"{name}: normalized ratio {now['ratio']:.3f} exceeds "
                f"{factor}x baseline {then['ratio']:.3f}"
            )
    if failures:
        raise SystemExit("flowsim benchmark regressions:\n  "
                         + "\n  ".join(failures))
    print(f"check passed: no case slower than {factor}x its recorded ratio")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=str(Path(__file__).parent
                                             / "BENCH_flowsim.json"))
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a recorded baseline and fail "
                             "on >1.5x normalized regressions")
    args = parser.parse_args(argv)

    results = run_suite(args.scale, args.repeats)
    if args.check:
        check_against(args.check, args.scale, results)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = (json.loads(out.read_text())
               if out.exists() else {"script": "benchmarks/bench_flowsim.py"})
    payload.setdefault("scales", {})[args.scale] = results
    payload["repeats"] = args.repeats
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
