"""Fig. 11: the DEC WRL burst-dominance panels.  Paper: 2% tails hold
45-70%; with more bursts per trace the shares are steadier than LBL's."""

from conftest import emit

from repro.experiments import fig10, fig11


def test_fig11(run_once):
    result = run_once(fig11, seed=8)
    emit(result)
    assert len(result.rows_) == 4
    for r in result.rows_:
        assert r.top2_share > 0.08
    # WRL traces hold considerably more bursts than LBL's (paper text)
    lbl = fig10(seed=7, traces=("LBL PKT-1",))
    assert min(r.n_bursts for r in result.rows_) > lbl.rows_[0].n_bursts
