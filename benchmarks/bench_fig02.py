"""Fig. 2: Poisson-consistency tests across the trace suite.

Paper shape: TELNET connection and FTP session arrivals are statistically
indistinguishable from Poisson at both 1 h and 10 min fixed rates; FTPDATA,
NNTP (and WWW) decisively are not; SMTP fails with consistently positive
correlation; coalescing FTPDATA into bursts improves the 10 min fit.
"""

from conftest import emit

from repro.experiments import fig02


def test_fig02(run_once):
    result = run_once(
        fig02, seed=0, traces=("LBL-1", "LBL-2", "UK"), hours=48
    )
    emit(result)

    # user sessions: Poisson at both time scales on most traces
    assert result.consistency_rate("TELNET", 3600.0) >= 2 / 3
    assert result.consistency_rate("TELNET", 600.0) >= 2 / 3
    assert result.consistency_rate("FTP", 3600.0) >= 2 / 3

    # machine-driven / within-session arrivals: never Poisson
    assert result.consistency_rate("FTPDATA", 3600.0) == 0.0
    assert result.consistency_rate("NNTP", 3600.0) == 0.0
    assert result.consistency_rate("SMTP", 3600.0) == 0.0

    # burst coalescing moves FTPDATA toward (without guaranteeing) Poisson
    burst_rate = sum(
        c.result.exponential_pass_rate
        for c in result.cells
        if c.protocol == "FTPDATA-BURSTS" and c.interval == 600.0
    )
    raw_rate = sum(
        c.result.exponential_pass_rate
        for c in result.cells
        if c.protocol == "FTPDATA" and c.interval == 600.0
    )
    assert burst_rate > raw_rate
