"""Fig. 5: variance-time plot, trace vs TCPLIB / EXP / VAR-EXP schemes.

Paper shape: TCPLIB agrees closely with the trace; EXP and VAR-EXP exhibit
far less variance over a large range of time scales; all converge at very
large M; the trace line is much shallower than slope -1."""

from conftest import emit

from repro.experiments import fig05


def test_fig05(run_once):
    result = run_once(fig05, seed=7, duration=7200.0)
    emit(result)
    v50 = result.variance_at(50)
    assert v50["TCPLIB"] > 0.65 * v50["TRACE"]  # TCPLIB tracks the trace
    assert v50["EXP"] < v50["TRACE"]  # EXP sacrifices burstiness
    assert v50["VAR-EXP"] < v50["TRACE"]
    slopes = result.slopes(max_level=1000)
    assert slopes["TRACE"] > -0.8  # decisively shallower than Poisson's -1
