"""Section VII-C-1: TELNET consistency with fGn 'on scales of tens of
seconds or more' — rejected at packet granularity, accepted once
aggregated."""

from conftest import emit

from repro.experiments import telnet_scales


def test_telnet_scales(run_once):
    result = run_once(telnet_scales, seed=0)
    emit(result)
    assert result.hurst_elevated_everywhere
    assert result.coarse_scales_fgn_consistent
