"""Fig. 7: FULL-TEL model replicates vs the TELNET trace.

Paper shape: "In general the agreement is quite good, though the models
have slightly higher variance than the trace data for M > 10^2."  """

from conftest import emit

from repro.experiments import fig07


def test_fig07(run_once):
    result = run_once(fig07, seed=4, n_replicates=3)
    emit(result)
    assert len(result.model_curves) == 3
    assert result.max_log_gap(max_level=500) < 0.45
