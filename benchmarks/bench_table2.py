"""Table II: regenerate the wide-area packet-trace suite summary."""

from conftest import emit

from repro.experiments import table2


def test_table2(run_once):
    result = run_once(table2, seed=0, hours=0.5, scale=0.5)
    emit(result)
    assert len(result.rows) == 9  # LBL PKT-1..5, DEC WRL-1..4
    assert all(r["synth_pkts"] > 1000 for r in result.rows)
    # the one-hour "ALL" traces carry non-TCP traffic
    all_rows = [r for r in result.rows if r["all_link_level"]]
    assert len(all_rows) == 6  # PKT-4, PKT-5, WRL-1..4
