"""Table I: regenerate the wide-area connection-trace suite summary."""

from conftest import emit

from repro.experiments import table1


def test_table1(run_once):
    result = run_once(table1, seed=0, hours=12, scale=0.5)
    emit(result)
    assert len(result.rows) == 15  # BC, UCB, NC, UK, DEC 1-3, LBL 1-8
    assert all(r["synth_conns"] > 100 for r in result.rows)
    # every trace carries the user-session protocols the paper tests
    assert all("TELNET" in r["protocols"] for r in result.rows)
