"""Section IV delay claim: exponential interarrivals significantly
underestimate TELNET queueing delay at matched utilization."""

from conftest import emit

from repro.experiments import delay_experiment


def test_delay_experiment(run_once):
    result = run_once(delay_experiment, seed=3, n_connections=60,
                      duration=900.0, utilization=0.85)
    emit(result)
    assert result.comparison.mean_delay_ratio > 1.3
    assert result.comparison.p99_delay_ratio > 1.2
