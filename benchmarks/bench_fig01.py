"""Fig. 1: mean relative hourly connection arrival rates, LBL-1..4."""

from conftest import emit

from repro.experiments import fig01


def test_fig01(run_once):
    result = run_once(fig01, seed=0, hours=48)
    emit(result)
    # The paper's narrated shape:
    assert result.telnet_lunch_dip  # office hours with a noontime dip
    assert result.ftp_evening_share > 1.2  # FTP's evening renewal
    assert result.nntp_flatness < 2.5  # NNTP fairly constant all day
    assert result.smtp_morning_bias  # west-coast morning bias
