"""Appendix D: M/G/infinity with Pareto service — asymptotic self-similarity.

r(k) = rho a^beta k^(1-beta)/(beta-1); Poisson marginals with mean
rho beta a/(beta-1); H = (3-beta)/2."""

from conftest import emit

from repro.experiments import appendix_d


def test_appendix_d(run_once):
    result = run_once(appendix_d, seed=2, n_steps=65536)
    emit(result)
    assert result.marginal_mean_measured == __import__("pytest").approx(
        result.marginal_mean_theory, rel=0.15
    )
    for c, s in zip(result.closed_form[:3], result.simulated[:3]):
        assert abs(s - c) < 0.6 * c
    assert result.whittle_hurst > 0.6  # decisively long-range dependent
