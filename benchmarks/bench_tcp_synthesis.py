"""Ablation: constant-rate vs TCP-shaped FTPDATA packet synthesis.

Section VII-C-2: real FTPDATA packet timing carries TCP's self-clocking
and window dynamics.  Both synthesis modes must yield non-exponential,
large-scale-correlated FTPDATA streams; the TCP-shaped mode adds the
service-time quantization of a genuine bottleneck."""

import numpy as np

from repro.stats import anderson_darling_exponential
from repro.traces import synthesize_packet_trace


def _ftp_gaps(tcp_shaped: bool):
    trace = synthesize_packet_trace(
        "LBL PKT-1", seed=3, hours=1.0, tcp_shaped_ftp=tcp_shaped,
    )
    return np.diff(trace.packet_times("FTPDATA"))


def test_tcp_shaped_synthesis(benchmark):
    gaps_tcp = benchmark.pedantic(
        lambda: _ftp_gaps(True), iterations=1, rounds=1, warmup_rounds=0
    )
    gaps_cr = _ftp_gaps(False)
    print(f"\nFTPDATA gaps: tcp-shaped n={gaps_tcp.size}, "
          f"constant-rate n={gaps_cr.size}")
    # neither mode is exponential (the paper's observation for FTPDATA)
    for gaps in (gaps_tcp, gaps_cr):
        if gaps.size >= 100:
            sample = gaps[gaps > 0][:3000]
            assert not anderson_darling_exponential(sample).passed
