"""Benchmark of the live replay path (repro.replay).

A CLI (``PYTHONPATH=src python benchmarks/bench_replay.py``) that runs
the subsystem's acceptance workloads over real localhost sockets and
records ``BENCH_replay.json``:

* **throughput** — a 100k-packet FULL-TEL TELNET trace replayed at
  ``speed=0`` over TCP in lossless block mode: packets/s, wire bytes/s,
  peak capture-queue depth, and the byte-identical-capture check;
* **pacing** — a 5k-packet source replayed with deadlines (``speed``
  chosen to finish in ~1 s of wall time, i.e. ~5k paced sends/s, well
  inside what per-record scheduling sustains): pacing-error p50/p99/max
  and the late-event count;
* **multiplexed** — the throughput run again over 4 concurrent flows.

Every run asserts zero loss and the pacing run asserts a generous p99
bound, so the benchmark doubles as a slow-path smoke test.  Numbers are
machine-dependent; the committed baseline records the shape (zero loss,
sub-5ms p99) rather than absolute throughput.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.replay import (  # noqa: E402
    PacingConfig,
    merged_pacing,
    run_loopback,
    synthesize_packets,
)
from repro.traces.io import write_packet_trace  # noqa: E402

#: Wall-clock budget for the paced run; speed is derived from the span.
PACED_WALL_S = 1.0

#: Paced-run size: ~PACED_N / PACED_WALL_S paced sends per second.  Keep
#: the implied rate well under the per-record scheduling ceiling, or the
#: error percentiles measure send backlog instead of scheduler jitter.
PACED_N = 5_000


def _run(source, tmp_dir, name, **kwargs):
    capture = Path(tmp_dir) / f"{name}.txt"
    result = run_loopback(source, capture_path=capture, **kwargs)
    assert result.zero_loss, f"{name}: lost packets"
    return result, capture


def bench_replay(n_packets: int, seed: int, tmp_dir: str) -> dict:
    trace = synthesize_packets("fulltel", n_packets, seed=seed)
    source_path = Path(tmp_dir) / "source.txt"
    write_packet_trace(trace, source_path)
    span = float(trace.timestamps[-1] - trace.timestamps[0])

    runs = {}

    # -- throughput: speed 0, single TCP flow, byte-identical capture --
    result, capture = _run(str(source_path), tmp_dir, "speed0",
                           pacing=PacingConfig(speed=0.0), validate=True)
    byte_identical = capture.read_bytes() == source_path.read_bytes()
    assert byte_identical, "speed-0 TCP capture must be byte-identical"
    assert result.validation.ok, result.validation.payload()
    runs["speed0_tcp"] = {
        **result.bench_payload(),
        "byte_identical_capture": byte_identical,
    }

    # -- pacing: deadlines compressed to ~PACED_WALL_S of wall time -----
    paced_trace = synthesize_packets("fulltel", PACED_N, seed=seed + 1)
    paced_span = float(
        paced_trace.timestamps[-1] - paced_trace.timestamps[0]
    )
    speed = max(paced_span / PACED_WALL_S, 1.0)
    result, _ = _run(paced_trace, tmp_dir, "paced",
                     pacing=PacingConfig(speed=speed))
    pacing = merged_pacing(result.flow_results)
    assert pacing["error_p99_s"] < 0.05, pacing
    runs["paced_tcp"] = {**result.bench_payload(), "speed": speed}

    # -- multiplexed: 4 concurrent flows, speed 0 ----------------------
    result, _ = _run(trace, tmp_dir, "flows4",
                     pacing=PacingConfig(speed=0.0), flows=4)
    runs["speed0_tcp_4flows"] = result.bench_payload()

    headline = runs["speed0_tcp"]
    paced = runs["paced_tcp"]["pacing"]
    return {
        "bench": "replay",
        "n_packets": n_packets,
        "seed": seed,
        "trace_span_s": span,
        "packets_per_s": headline["packets_per_s"],
        "wire_bytes_per_s": headline["wire_bytes_per_s"],
        "queue_high_water": headline["queue_high_water"],
        "zero_loss": all(r["zero_loss"] for r in runs.values()),
        "byte_identical_capture": headline["byte_identical_capture"],
        "pacing_error_p50_s": paced["error_p50_s"],
        "pacing_error_p99_s": paced["error_p99_s"],
        "pacing_error_max_s": paced["error_max_s"],
        "pacing_n_late": paced["n_late"],
        "runs": runs,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default=str(Path(__file__).parent
                                             / "BENCH_replay.json"))
    args = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-replay-") as tmp_dir:
        payload = bench_replay(args.packets, args.seed, tmp_dir)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"{payload['n_packets']:,d} packets: "
          f"{payload['packets_per_s']:,.0f} pkts/s, "
          f"pacing p50={payload['pacing_error_p50_s'] * 1e3:.3f}ms "
          f"p99={payload['pacing_error_p99_s'] * 1e3:.3f}ms "
          f"({payload['pacing_n_late']:,d} late), "
          f"queue high-water {payload['queue_high_water']}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
