"""Benchmarks of the columnar trace data plane.

Two faces, mirroring ``bench_kernels.py``:

* **pytest-benchmark micro-tests** (run with
  ``pytest benchmarks/bench_traces.py --benchmark-only``) timing trace
  construction and I/O on their own;
* **a CLI** (``PYTHONPATH=src python benchmarks/bench_traces.py``) that
  times the columnar read/write/construct paths against the frozen
  pre-columnar record loops from :mod:`repro.kernels.reference`, verifies
  the equivalence claim for each (byte-identical files, column-identical
  traces), and records the baseline in ``BENCH_traces.json``.
  ``--check BASELINE`` compares the *normalized* ratio
  ``columnar/loop`` against the recorded one and fails when any path
  regressed past 1.5x — machine-independent, so CI can enforce it on
  whatever hardware it gets.

The ``full`` scale reads a 1M-row packet trace: the PR's acceptance
criterion is a >=10x columnar read speedup at that size.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.kernels import reference as ref
from repro.traces.io import (
    read_connection_trace,
    read_packet_trace,
    write_connection_trace,
    write_packet_trace,
)
from repro.traces.trace import ConnectionTrace, PacketTrace

PROTOCOLS = np.array(
    ["TELNET", "FTP", "FTPDATA", "SMTP", "NNTP", "OTHER"], dtype=object
)


def _packet_arrays(n, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "timestamps": np.cumsum(rng.exponential(0.01, n)),
        "protocols": PROTOCOLS[rng.integers(0, PROTOCOLS.size, n)],
        "connection_ids": rng.integers(0, n // 10 + 1, n),
        "directions": rng.integers(0, 2, n).astype(np.int8),
        "sizes": rng.integers(1, 1460, n),
        "user_data": rng.random(n) < 0.9,
    }


def _connection_arrays(n, seed=1):
    rng = np.random.default_rng(seed)
    sids = rng.integers(-1, n // 5 + 1, n)
    return {
        "start_times": np.cumsum(rng.exponential(0.5, n)),
        "durations": rng.exponential(30.0, n),
        "protocols": PROTOCOLS[rng.integers(0, PROTOCOLS.size, n)],
        "bytes_orig": rng.integers(1, 10**7, n),
        "bytes_resp": rng.integers(1, 10**7, n),
        "orig_hosts": rng.integers(0, 500, n),
        "resp_hosts": rng.integers(500, 1000, n),
        "session_ids": sids,
    }


def _packet_trace(n, seed=0):
    return PacketTrace.from_arrays("bench", **_packet_arrays(n, seed))


def _connection_trace(n, seed=1):
    return ConnectionTrace.from_arrays("bench", **_connection_arrays(n, seed))


def _records_of(trace):
    return [trace.record(i) for i in range(len(trace))]


def _pkt_traces_equal(a, b):
    return (np.array_equal(a.timestamps, b.timestamps)
            and np.array_equal(a.protocols, b.protocols)
            and np.array_equal(a.connection_ids, b.connection_ids)
            and np.array_equal(a.directions, b.directions)
            and np.array_equal(a.sizes, b.sizes)
            and np.array_equal(a.user_data, b.user_data))


def _conn_traces_equal(a, b):
    return (np.array_equal(a.start_times, b.start_times)
            and np.array_equal(a.durations, b.durations)
            and np.array_equal(a.protocols, b.protocols)
            and np.array_equal(a.bytes_orig, b.bytes_orig)
            and np.array_equal(a.bytes_resp, b.bytes_resp)
            and np.array_equal(a.orig_hosts, b.orig_hosts)
            and np.array_equal(a.resp_hosts, b.resp_hosts)
            and np.array_equal(a.session_ids, b.session_ids))


# ----------------------------------------------------------------------
# pytest-benchmark micro-tests
# ----------------------------------------------------------------------
def test_trace_packet_from_arrays(benchmark):
    arrays = _packet_arrays(100_000)
    trace = benchmark(lambda: PacketTrace.from_arrays("bench", **arrays))
    assert len(trace) == 100_000


def test_trace_packet_read_columnar(benchmark, tmp_path):
    path = tmp_path / "pkt.txt"
    write_packet_trace(_packet_trace(100_000), path)
    trace = benchmark(read_packet_trace, path)
    assert len(trace) == 100_000


def test_trace_packet_write_columnar(benchmark, tmp_path):
    trace = _packet_trace(100_000)
    path = tmp_path / "pkt.txt"
    benchmark(write_packet_trace, trace, path)
    assert path.exists()


def test_trace_connection_read_columnar(benchmark, tmp_path):
    path = tmp_path / "conn.txt"
    write_connection_trace(_connection_trace(50_000), path)
    trace = benchmark(read_connection_trace, path)
    assert len(trace) == 50_000


# ----------------------------------------------------------------------
# CLI: record-loop vs columnar baseline for BENCH_traces.json
# ----------------------------------------------------------------------
def _time(fn, repeats):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def trace_cases(scale, tmpdir):
    """Yield (name, n, loop_fn, columnar_fn, identical_fn, identity)."""
    full = scale == "full"
    tmpdir = Path(tmpdir)

    # The acceptance target: a 1M-row packet trace at full scale.
    n_pkt = 1_000_000 if full else 100_000
    n_conn = 300_000 if full else 50_000

    pkt_arrays = _packet_arrays(n_pkt)
    pkt_trace = PacketTrace.from_arrays("bench", **pkt_arrays)
    pkt_records = _records_of(pkt_trace)
    conn_arrays = _connection_arrays(n_conn)
    conn_trace = ConnectionTrace.from_arrays("bench", **conn_arrays)
    conn_records = _records_of(conn_trace)

    yield ("packet_construct", n_pkt,
           lambda: PacketTrace("bench", pkt_records),
           lambda: PacketTrace.from_arrays("bench", **pkt_arrays),
           _pkt_traces_equal,
           "record list and from_arrays build column-identical traces")

    yield ("connection_construct", n_conn,
           lambda: ConnectionTrace("bench", conn_records),
           lambda: ConnectionTrace.from_arrays("bench", **conn_arrays),
           _conn_traces_equal,
           "record list and from_arrays build column-identical traces")

    pkt_loop_path = tmpdir / "pkt-loop.txt"
    pkt_col_path = tmpdir / "pkt-col.txt"
    yield ("packet_write", n_pkt,
           lambda: ref.write_packet_trace_loop(pkt_trace, pkt_loop_path),
           lambda: write_packet_trace(pkt_trace, pkt_col_path),
           lambda loop, vec: (pkt_loop_path.read_bytes()
                              == pkt_col_path.read_bytes()),
           "batched writer emits a byte-identical file")

    conn_loop_path = tmpdir / "conn-loop.txt"
    conn_col_path = tmpdir / "conn-col.txt"
    yield ("connection_write", n_conn,
           lambda: ref.write_connection_trace_loop(conn_trace, conn_loop_path),
           lambda: write_connection_trace(conn_trace, conn_col_path),
           lambda loop, vec: (conn_loop_path.read_bytes()
                              == conn_col_path.read_bytes()),
           "batched writer emits a byte-identical file")

    pkt_path = tmpdir / "pkt.txt"
    write_packet_trace(pkt_trace, pkt_path)
    yield ("packet_read", n_pkt,
           lambda: ref.read_packet_trace_loop(pkt_path),
           lambda: read_packet_trace(pkt_path),
           _pkt_traces_equal,
           "batched reader returns a column-identical trace")

    conn_path = tmpdir / "conn.txt"
    write_connection_trace(conn_trace, conn_path)
    yield ("connection_read", n_conn,
           lambda: ref.read_connection_trace_loop(conn_path),
           lambda: read_connection_trace(conn_path),
           _conn_traces_equal,
           "batched reader returns a column-identical trace")


def run_suite(scale, repeats):
    results = {}
    with tempfile.TemporaryDirectory() as tmpdir:
        for case in trace_cases(scale, tmpdir):
            name, n, loop_fn, col_fn, identical_fn, identity = case
            loop_s, loop_out = _time(loop_fn, repeats)
            col_s, col_out = _time(col_fn, repeats)
            identical = bool(identical_fn(loop_out, col_out))
            results[name] = {
                "n": int(n),
                "loop_s": round(loop_s, 6),
                "columnar_s": round(col_s, 6),
                "speedup": round(loop_s / col_s, 2) if col_s > 0 else None,
                "identical": identical,
                "identity": identity,
            }
            print(f"{name:24s} n={n:>9d}  loop {loop_s:9.4f}s  "
                  f"col {col_s:9.4f}s  x{loop_s / col_s:8.1f}  "
                  f"{'OK' if identical else 'MISMATCH'}")
    return results


def check_against(baseline_path, scale, results, factor=1.5):
    """Fail when any path's columnar/loop ratio regressed past ``factor`` x
    the recorded one (normalized, so machine speed cancels)."""
    payload = json.loads(Path(baseline_path).read_text())
    base = payload.get("scales", {}).get(scale)
    if base is None:
        raise SystemExit(f"baseline {baseline_path} has no '{scale}' scale")
    failures = []
    for name, now in results.items():
        if not now["identical"]:
            failures.append(f"{name}: equivalence check failed")
            continue
        then = base.get(name)
        if then is None:
            continue  # new case: no baseline yet
        ratio_now = now["columnar_s"] / now["loop_s"]
        ratio_then = then["columnar_s"] / then["loop_s"]
        if now["columnar_s"] < 0.005 and ratio_now < 1.0:
            # Sub-5ms paths sit at timer resolution: their ratio is all
            # jitter.  As long as they still beat the loop, they pass.
            continue
        if ratio_now > factor * ratio_then:
            failures.append(
                f"{name}: columnar/loop ratio {ratio_now:.4f} exceeds "
                f"{factor}x baseline {ratio_then:.4f}"
            )
    if failures:
        raise SystemExit("trace benchmark regressions:\n  "
                         + "\n  ".join(failures))
    print(f"check passed: no path slower than {factor}x its recorded ratio")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=str(Path(__file__).parent
                                             / "BENCH_traces.json"))
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a recorded baseline and fail "
                             "on >1.5x normalized regressions")
    args = parser.parse_args(argv)

    results = run_suite(args.scale, args.repeats)
    if args.check:
        check_against(args.check, args.scale, results)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = (json.loads(out.read_text())
               if out.exists() else {"script": "benchmarks/bench_traces.py"})
    payload.setdefault("scales", {})[args.scale] = results
    payload["repeats"] = args.repeats
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
