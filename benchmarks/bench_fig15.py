"""Fig. 15: the same process at b = 10^7 — visual self-similarity.

Paper numbers across b = 10^3 -> 10^7: mean burst length grows only ~2.6x
while the mean lull length changes ~1.2x.  The benchmark uses b = 10^6 and
fewer bins/seeds to keep the run to seconds (E[burst] scales as log b, so
the expected ratio is log(1e6)/log(1e3) = 2)."""

from conftest import emit

from repro.experiments import scale_comparison


def test_fig15_scale_comparison(run_once):
    result = run_once(scale_comparison, seed=10, large_b=1e6, n_seeds=4,
                      n_bins=600)
    print()
    print(result.render())
    assert 1.0 < result.burst_ratio < 4.5  # paper: ~2.6 over a larger span
    assert 0.2 < result.lull_ratio < 3.5  # paper: ~1.2 (scale-invariant)
