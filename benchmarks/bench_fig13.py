"""Fig. 13: variance-time plots of aggregate DEC WRL traffic."""

from conftest import emit

from repro.experiments import fig13


def test_fig13(run_once):
    result = run_once(fig13, seed=9, hours=0.5)
    emit(result)
    assert len(result.rows_) == 4
    assert result.all_show_large_scale_correlations
    for r in result.rows_:
        assert r.vt_hurst > 0.55
