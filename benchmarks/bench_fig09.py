"""Fig. 9: percentage of FTPDATA bytes in the largest bursts, six datasets.

Paper numbers: the upper 0.5% of bursts holds 30-60% of the bytes (UK, the
lightest, 30% / 55% at 0.5% / 2%); upper-5% tail Pareto with
0.9 <= beta <= 1.4; exponential benchmark ~3%."""

from conftest import emit

from repro.experiments import fig09


def test_fig09(run_once):
    result = run_once(fig09, seed=6, hours=48)
    emit(result)
    assert len(result.rows_) >= 4
    for r in result.rows_:
        # paper band 0.3-0.6; the tail is volatile (one giant burst
        # can push a trace's share far up, as the paper's PKT-2/PKT-5 show)
        assert 0.10 < r.share_top_half_percent < 0.97
        assert r.share_top_two_percent > r.share_top_half_percent
        if r.tail_shape is not None:
            assert 0.6 < r.tail_shape < 2.0  # paper: 0.9 <= beta <= 1.4
    assert result.all_dominated_by_tail  # >> the ~3% exponential benchmark
