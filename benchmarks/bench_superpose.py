"""Benchmarks of the batched superposition kernels.

Two faces, mirroring ``bench_monitor.py`` / ``bench_kernels.py``:

* **pytest-benchmark micro-tests** (run with
  ``pytest benchmarks/bench_superpose.py --benchmark-only``) timing the
  batched ON/OFF and renewal kernels on their own;
* **a CLI** (``PYTHONPATH=src python benchmarks/bench_superpose.py``) that
  times each kernel against the frozen per-source loops from
  :mod:`repro.kernels.reference`, re-verifies the bit-identity contracts,
  and records the baseline in ``BENCH_superpose.json``.  Each case's
  ``ratio`` is batched-time-per-source over loop-time-per-source (the
  loop is timed on a fixed-size subsample — it is per-source linear, so
  the per-source normalization is honest and keeps full-scale runs
  affordable), which makes the recorded numbers machine-independent;
  ``--check BASELINE`` fails when any case's normalized ratio regressed
  past 1.5x.

The acceptance target: the batched ON/OFF kernel is >= 20x faster than
the frozen loop at 10^5 sources (``speedup_x`` of the ``onoff_pareto``
case at ``--scale full``), and the shared-memory fan-out moves only
metadata across the process boundary (``meta_bytes`` vs
``buffer_bytes`` of the ``shared_pool`` case) while staying bit-identical
to the serial path.
"""

import argparse
import json
import pickle
import resource
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arrivals.onoff import OnOffSource
from repro.distributions.pareto import Pareto
from repro.kernels import (
    superpose_onoff,
    superpose_onoff_groups,
    superpose_renewal,
)
from repro.kernels.reference import multiplex_onoff_loop, superpose_renewal_loop

#: The phase-diagram working point: short heavy-tailed periods, so each
#: source cycles many times per horizon — the regime the batching exists
#: for.
SOURCE = OnOffSource.pareto(on_location=0.1, off_location=0.1)
GAP_DIST = Pareto(1.0, 1.2)
N_BINS = 100
BIN_WIDTH = 10.0
CHUNK = 4096
#: Sources the frozen loops are timed on (they are per-source linear, so
#: per-source time from a subsample extrapolates honestly).
LOOP_SAMPLE = 300


# ----------------------------------------------------------------------
# pytest-benchmark micro-tests
# ----------------------------------------------------------------------
def test_onoff_batched_20k(benchmark):
    out = benchmark(
        superpose_onoff, 20_000, N_BINS, BIN_WIDTH,
        source=SOURCE, seed=0, chunk=CHUNK,
    )
    assert out.shape == (N_BINS,) and out.sum() > 0


def test_onoff_grouped_128x8(benchmark):
    out = benchmark(
        superpose_onoff_groups, 128, 8, 1, 16_384.0,
        source=SOURCE, seed=0, chunk=CHUNK,
    )
    assert out.shape == (128, 1) and (out > 0).all()


def test_renewal_batched_20k(benchmark):
    out = benchmark(
        superpose_renewal, 20_000, N_BINS, BIN_WIDTH,
        gap_dist=GAP_DIST, seed=0, chunk=CHUNK,
    )
    assert out.sum() > 0


# ----------------------------------------------------------------------
# CLI: normalized timings for BENCH_superpose.json
# ----------------------------------------------------------------------
def _time(fn, repeats):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _per_source_row(n_sources, batched_s, loop_sample, loop_s):
    batched_per = batched_s / n_sources
    loop_per = loop_s / loop_sample
    return {
        "case_s": round(batched_s, 6),
        "n_sources": int(n_sources),
        "loop_sample": int(loop_sample),
        "loop_sample_s": round(loop_s, 6),
        "batched_us_per_source": round(batched_per * 1e6, 3),
        "loop_us_per_source": round(loop_per * 1e6, 3),
        "ratio": round(batched_per / loop_per, 5),
        "speedup_x": round(loop_per / batched_per, 2),
    }


def run_suite(scale, repeats):
    full = scale == "full"
    n = 100_000 if full else 20_000
    results = {}

    # -- batched ON/OFF vs frozen loop (the >= 20x acceptance case) -----
    batched_s, batched = _time(
        lambda: superpose_onoff(n, N_BINS, BIN_WIDTH, source=SOURCE,
                                seed=0, chunk=CHUNK),
        repeats,
    )
    loop_s, loop_sub = _time(
        lambda: multiplex_onoff_loop(LOOP_SAMPLE, N_BINS, BIN_WIDTH,
                                     SOURCE, seed=0),
        repeats,
    )
    # Identity on the subsample: same seed, chunk >= n -> same float tree.
    exact = superpose_onoff(LOOP_SAMPLE, N_BINS, BIN_WIDTH, source=SOURCE,
                            seed=0, chunk=LOOP_SAMPLE)
    assert np.array_equal(exact, loop_sub), "batched != loop on same seed"
    results["onoff_pareto"] = _per_source_row(
        n, batched_s, LOOP_SAMPLE, loop_s)
    results["onoff_pareto"]["identity"] = "exact"

    # -- grouped replication sweep vs one-call-per-replication ----------
    reps, group = (128, 8) if full else (32, 8)
    grouped_s, grouped = _time(
        lambda: superpose_onoff_groups(reps, group, 1, 16_384.0,
                                       source=SOURCE, seed=0, chunk=CHUNK),
        repeats,
    )
    percall_s, _ = _time(
        lambda: [
            superpose_onoff(group, 1, 16_384.0, source=SOURCE, seed=seq,
                            chunk=CHUNK)
            for seq in np.random.SeedSequence(0).spawn(
                reps * group)[::group][:4]
        ],
        repeats,
    )
    # per-replication time: grouped amortizes all reps, per-call timed on 4
    results["grouped_onoff"] = {
        "case_s": round(grouped_s, 6),
        "replications": reps,
        "group_size": group,
        "grouped_s_per_rep": round(grouped_s / reps, 6),
        "percall_s_per_rep": round(percall_s / 4, 6),
        "ratio": round((grouped_s / reps) / (percall_s / 4), 5),
        "speedup_x": round((percall_s / 4) / (grouped_s / reps), 2),
    }

    # -- batched renewal vs frozen loop ---------------------------------
    ren_s, ren = _time(
        lambda: superpose_renewal(n, N_BINS, BIN_WIDTH, gap_dist=GAP_DIST,
                                  seed=0, chunk=CHUNK),
        repeats,
    )
    ren_loop_s, ren_sub = _time(
        lambda: superpose_renewal_loop(LOOP_SAMPLE, N_BINS, BIN_WIDTH,
                                       GAP_DIST, seed=0),
        repeats,
    )
    ren_exact = superpose_renewal(LOOP_SAMPLE, N_BINS, BIN_WIDTH,
                                  gap_dist=GAP_DIST, seed=0, chunk=CHUNK)
    assert np.array_equal(ren_exact, ren_sub), "renewal batched != loop"
    results["renewal_pareto"] = _per_source_row(
        n, ren_s, LOOP_SAMPLE, ren_loop_s)
    results["renewal_pareto"]["identity"] = "exact"

    # -- shared-memory fan-out: metadata-only transfer, bit-identical ---
    # Wide aggregate (20k bins -> 160 KB partial per chunk task): with
    # pickle-everything fan-out each task's partial would ride back through
    # the executor; here only the metadata dicts do.
    n_shared, shared_bins, shared_w = 2_048, 20_000, 0.05
    shared_chunk = 256
    n_tasks = -(-n_shared // shared_chunk)
    rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    meta_serial: list = []
    serial = superpose_onoff(n_shared, shared_bins, shared_w, source=SOURCE,
                             seed=3, chunk=shared_chunk, jobs=1,
                             meta=meta_serial)
    meta_jobs: list = []
    shared_s, fanned = _time(
        lambda: superpose_onoff(n_shared, shared_bins, shared_w,
                                source=SOURCE, seed=3, chunk=shared_chunk,
                                jobs=2, meta=meta_jobs),
        1,
    )
    assert np.array_equal(serial, fanned), "jobs=2 != serial"
    rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    meta_bytes = len(pickle.dumps(meta_jobs[-n_tasks:]))
    buffer_bytes = n_tasks * shared_bins * 8
    results["shared_pool"] = {
        "case_s": round(shared_s, 6),
        "n_sources": n_shared,
        "n_bins": shared_bins,
        "jobs": 2,
        "meta_bytes": meta_bytes,
        "buffer_bytes": buffer_bytes,
        # bytes through pickle per byte of partial aggregate: the
        # no-array-pickling contract, checked as a structural ratio.
        "ratio": round(meta_bytes / buffer_bytes, 8),
        "parent_rss_peak_kb": int(rss_after),
        "parent_rss_delta_kb": int(rss_after - rss_before),
        "identity": "exact",
    }

    for name, row in results.items():
        extra = (f"speedup {row['speedup_x']:8.2f}x"
                 if "speedup_x" in row else
                 f"meta/buffer {row['ratio']:.2e}")
        print(f"{name:16s} {row['case_s']:9.4f}s  ratio {row['ratio']:10.5f}"
              f"  {extra}")
    return results


def check_against(baseline_path, scale, results, factor=1.5):
    """Fail when any case's normalized ratio regressed past ``factor`` x
    the recorded one (machine speed cancels)."""
    payload = json.loads(Path(baseline_path).read_text())
    base = payload.get("scales", {}).get(scale)
    if base is None:
        raise SystemExit(f"baseline {baseline_path} has no '{scale}' scale")
    failures = []
    for name, now in results.items():
        then = base.get(name)
        if then is None:
            continue  # new case: no baseline yet
        if now["case_s"] < 0.005 and now["ratio"] <= then["ratio"]:
            continue  # timer-resolution noise, and not slower anyway
        if now["ratio"] > factor * then["ratio"]:
            failures.append(
                f"{name}: normalized ratio {now['ratio']:.5f} exceeds "
                f"{factor}x baseline {then['ratio']:.5f}"
            )
    if failures:
        raise SystemExit("superpose benchmark regressions:\n  "
                         + "\n  ".join(failures))
    print(f"check passed: no case slower than {factor}x its recorded ratio")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=str(Path(__file__).parent
                                             / "BENCH_superpose.json"))
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a recorded baseline and fail "
                             "on >1.5x normalized regressions")
    args = parser.parse_args(argv)

    results = run_suite(args.scale, args.repeats)
    if args.check:
        check_against(args.check, args.scale, results)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = (json.loads(out.read_text())
               if out.exists()
               else {"script": "benchmarks/bench_superpose.py"})
    payload.setdefault("scales", {})[args.scale] = results
    payload["repeats"] = args.repeats
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
