"""Appendix C: burst/lull scaling regimes of i.i.d. Pareto counts.

beta = 2: bursts grow ~linearly with b; beta = 1: ~logarithmically;
beta = 1/2: constant.  Lull quantiles (in bins) invariant in b."""

from conftest import emit

from repro.experiments import appendix_c


def test_appendix_c(run_once):
    result = run_once(appendix_c, seed=1, n_bins=2000)
    emit(result)
    assert result.regime_confirmed(2.0)
    assert result.regime_confirmed(1.0)
    assert result.regime_confirmed(0.5)
