"""Benchmarks of the in-network conditioning elements and the detector.

Two faces, mirroring ``bench_flowsim.py``:

* **pytest-benchmark micro-tests** (run with
  ``pytest benchmarks/bench_shaping.py --benchmark-only``) timing the
  vectorized GCRA scans and the policing detector on their own;
* **a CLI** (``PYTHONPATH=src python benchmarks/bench_shaping.py``) that
  records the baseline in ``BENCH_shaping.json``.  Each case is
  normalized against the scalar ``GcraCore.offer`` reference loop over
  a fixed 20k-packet slice of the same input — the semantics the scans
  must reproduce bit-for-bit — so the recorded ratio is
  machine-independent; ``--check BASELINE`` fails when any case's
  normalized ratio regressed past 1.5x.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.shaping import (
    LeakyBucketShaper,
    PolicingDetector,
    TokenBucketPolicer,
    detect_times,
    reference_condition,
)

_REF_N = 20_000  # scalar-reference slice size (the normalizer)


def _packets(n, seed=0, rate=50_000.0):
    """Bursty packet columns: Pareto gaps so the buckets actually work."""
    rng = np.random.default_rng(seed)
    gaps = (rng.pareto(1.5, n) + 0.1) / rate * 700.0
    times = np.cumsum(gaps)
    costs = rng.uniform(40.0, 1500.0, n)
    return times, costs


def _scalar_reference_s(times, costs, element, repeats):
    """Best-of-N scalar ``GcraCore.offer`` loop time over the reference
    slice, scaled to the full input length (per-packet cost is flat)."""
    t, c = times[:_REF_N], costs[:_REF_N]
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        reference_condition(element, t, c)
        best = min(best, time.perf_counter() - t0)
    return best * (times.size / t.size)


# ----------------------------------------------------------------------
# pytest-benchmark micro-tests
# ----------------------------------------------------------------------
def test_policer_scan_1m(benchmark):
    times, costs = _packets(1_000_000)
    pol = TokenBucketPolicer(400_000.0, 100_000.0)
    res = benchmark(pol.apply, times, costs)
    assert 0 < res.n_dropped < res.n


def test_shaper_scan_1m(benchmark):
    times, costs = _packets(1_000_000)
    sh = LeakyBucketShaper(400_000.0, 100_000.0)
    res = benchmark(sh.apply, times, costs)
    assert res.accept.all()


def test_detect_times_500k(benchmark):
    times, costs = _packets(500_000)
    res = TokenBucketPolicer(300_000.0, 75_000.0).apply(times, costs)
    verdict = benchmark(detect_times, res.accepted_times, res.accepted_costs)
    assert verdict.n_packets == res.n_accepted


# ----------------------------------------------------------------------
# CLI: normalized scan timings for BENCH_shaping.json
# ----------------------------------------------------------------------
def _time(fn, repeats):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def shaping_cases(scale, repeats):
    """Yield (name, n_packets, run_fn, scalar_reference_s)."""
    n = 1_000_000 if scale == "full" else 200_000
    times, costs = _packets(n)
    rate, depth = 400_000.0, 100_000.0

    pol = TokenBucketPolicer(rate, depth)
    yield ("policer_scan", n, lambda: pol.apply(times, costs),
           _scalar_reference_s(times, costs, pol, repeats))

    sh = LeakyBucketShaper(rate, depth)
    yield ("shaper_scan", n, lambda: sh.apply(times, costs),
           _scalar_reference_s(times, costs, sh, repeats))

    bounded = LeakyBucketShaper(rate, depth, max_delay=0.05)
    yield ("bounded_shaper_scan", n, lambda: bounded.apply(times, costs),
           _scalar_reference_s(times, costs, bounded, repeats))

    policed = pol.apply(times, costs)
    pt, pc = policed.accepted_times, policed.accepted_costs
    # The detector has no scalar twin; normalize against the policer's
    # reference loop over the same survivors so machine speed cancels.
    det_ref = _scalar_reference_s(pt, pc, TokenBucketPolicer(rate, depth),
                                  repeats)
    yield ("detect_times", pt.size, lambda: detect_times(pt, pc), det_ref)

    def _sharded_detect(parts=8):
        bounds = np.linspace(0, pt.size, parts + 1).astype(int)
        shards = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            d = PolicingDetector()
            d.update(pt[lo:hi], pc[lo:hi])
            shards.append(d)
        whole = shards[0]
        for d in shards[1:]:
            whole.merge(d)
        return whole.infer()

    yield ("detect_sharded_merge", pt.size, _sharded_detect, det_ref)


def run_suite(scale, repeats):
    results = {}
    for name, n, fn, ref_s in shaping_cases(scale, repeats):
        case_s, out = _time(fn, repeats)
        row = {
            "case_s": round(case_s, 6),
            "scalar_reference_s": round(ref_s, 6),
            "ratio": round(case_s / ref_s, 4),
            "n_packets": int(n),
            "packets_per_second": round(n / case_s, 1),
        }
        results[name] = row
        print(f"{name:22s} {case_s:9.4f}s  scalar {ref_s:9.4f}s  "
              f"ratio {row['ratio']:8.3f}  "
              f"{row['packets_per_second']:>14,.0f} pkt/s")
    return results


def check_against(baseline_path, scale, results, factor=1.5):
    """Fail when any case's scalar-normalized ratio regressed past
    ``factor`` x the recorded one (machine speed cancels)."""
    payload = json.loads(Path(baseline_path).read_text())
    base = payload.get("scales", {}).get(scale)
    if base is None:
        raise SystemExit(f"baseline {baseline_path} has no '{scale}' scale")
    failures = []
    for name, now in results.items():
        then = base.get(name)
        if then is None:
            continue  # new case: no baseline yet
        if now["case_s"] < 0.005 and now["ratio"] <= then["ratio"]:
            continue  # timer-resolution noise, and not slower anyway
        if now["ratio"] > factor * then["ratio"]:
            failures.append(
                f"{name}: normalized ratio {now['ratio']:.4f} exceeds "
                f"{factor}x baseline {then['ratio']:.4f}"
            )
    if failures:
        raise SystemExit("shaping benchmark regressions:\n  "
                         + "\n  ".join(failures))
    print(f"check passed: no case slower than {factor}x its recorded ratio")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=str(Path(__file__).parent
                                             / "BENCH_shaping.json"))
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a recorded baseline and fail "
                             "on >1.5x normalized regressions")
    args = parser.parse_args(argv)

    results = run_suite(args.scale, args.repeats)
    if args.check:
        check_against(args.check, args.scale, results)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = (json.loads(out.read_text())
               if out.exists() else {"script": "benchmarks/bench_shaping.py"})
    payload.setdefault("scales", {})[args.scale] = results
    payload["repeats"] = args.repeats
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
