"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, asserts
its qualitative *shape* (who wins, orderings, factor ranges — see
EXPERIMENTS.md for paper-vs-measured values), and prints the regenerated
rows/series.  Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s``
to see the rendered tables inline).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Benchmark an experiment exactly once (they are seconds-scale, not
    microseconds-scale) and return its result object."""

    def _run(fn, **kwargs):
        return benchmark.pedantic(
            lambda: fn(**kwargs), iterations=1, rounds=1, warmup_rounds=0
        )

    return _run


def emit(result) -> None:
    """Print an experiment's rendered table (visible with pytest -s)."""
    print()
    print(result.render())
