"""Fig. 8: FTPDATA intra-session connection spacing CDFs, six datasets.

Paper shape: upper tails much heavier than exponential; bimodality with
inflection between 2 and 6 s justifying the 4 s burst cutoff."""

from conftest import emit

from repro.experiments import fig08


def test_fig08(run_once):
    result = run_once(fig08, seed=5, hours=24)
    emit(result)
    assert len(result.cdfs) >= 4
    for share in result.sub_cutoff_share.values():
        assert 0.1 < share < 0.95  # both spacing modes populated
    assert all(result.tail_heavier_than_exponential.values())
