"""Benchmarks of the always-on online monitor.

Two faces, mirroring ``bench_flowsim.py`` / ``bench_kernels.py``:

* **pytest-benchmark micro-tests** (run with
  ``pytest benchmarks/bench_monitor.py --benchmark-only``) timing the
  windowed sketches and the full service on their own;
* **a CLI** (``PYTHONPATH=src python benchmarks/bench_monitor.py``) that
  times each windowed sketch and the end-to-end service, and records the
  baseline in ``BENCH_monitor.json``.  Each case is normalized against a
  bare chunked searchsorted+bincount loop over the same event count — the
  floor any array-native windowed collector pays — so the recorded ratio
  is machine-independent; ``--check BASELINE`` fails when any case's
  normalized ratio regressed past 1.5x.

The acceptance target: the service sustains well over 10^5 events/s of
monitoring — orders of magnitude above the traces the paper studied —
in O(window) memory.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.monitor import (
    DecayedTopK,
    MonitorConfig,
    MonitorService,
    SlidingCountLadder,
    WindowedQuantileSketch,
    iter_batches,
    pareto_stream,
)

CHUNK = 1024


def _stream(n_events, rate=200.0, seed=0):
    """A heavy-tailed arrival stream of roughly ``n_events`` arrivals."""
    times = pareto_stream(n_events / rate, rate, seed=seed)
    return times[:n_events]


def _chunks(times):
    return [times[i:i + CHUNK] for i in range(0, times.size, CHUNK)]


def _array_baseline(chunks, edges):
    """Chunked searchsorted + bincount over the same arrivals: the floor
    any array-native windowed collector pays, used to normalize away
    machine speed."""
    total = 0
    for chunk in chunks:
        idx = np.searchsorted(edges, chunk, side="right")
        total += int(np.bincount(idx, minlength=edges.size + 1).sum())
    return total


# ----------------------------------------------------------------------
# pytest-benchmark micro-tests
# ----------------------------------------------------------------------
def test_sliding_ladder_200k(benchmark):
    times = _stream(200_000)
    chunks = _chunks(times)

    def run():
        ladder = SlidingCountLadder(0.01, window=60.0)
        for chunk in chunks:
            ladder.update(chunk)
        return ladder

    ladder = benchmark(run)
    assert ladder.n_events == times.size


def test_service_end_to_end_100k(benchmark):
    times = _stream(100_000)
    batches = list(iter_batches(times, 1.0))
    config = MonitorConfig(window=60.0, bin_width=0.05, snapshot_every=5.0,
                           rate_tick=0.5)

    def run():
        service = MonitorService(config)
        for batch in batches:
            service.observe(batch)
        return service.finalize()

    report = benchmark(run)
    assert report.n_events == times.size
    assert report.snapshots


# ----------------------------------------------------------------------
# CLI: normalized timings for BENCH_monitor.json
# ----------------------------------------------------------------------
def _time(fn, repeats):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def monitor_cases(scale):
    """Yield (name, n_events, run_fn)."""
    full = scale == "full"
    n = 1_000_000 if full else 200_000
    times = _stream(n)
    chunks = _chunks(times)

    def ladder_run():
        ladder = SlidingCountLadder(0.01, window=60.0)
        for chunk in chunks:
            ladder.update(chunk)
        return ladder

    yield ("ladder_update", n, ladder_run)

    gap_chunks = [np.diff(c) for c in chunks]
    gap_stamps = [c[1:] for c in chunks]

    def topk_run():
        topk = DecayedTopK(4096, decay=0.01)
        for gaps, stamps in zip(gap_chunks, gap_stamps):
            pos = gaps > 0
            topk.update(gaps[pos], stamps[pos])
        return topk

    yield ("topk_update", n, topk_run)

    def quantile_run():
        sketch = WindowedQuantileSketch(512, window=60.0, n_panes=8)
        for gaps, stamps in zip(gap_chunks, gap_stamps):
            sketch.update(gaps, stamps)
        return sketch

    yield ("quantile_update", n, quantile_run)

    batches = list(iter_batches(times, 1.0))
    config = MonitorConfig(window=60.0, bin_width=0.05, snapshot_every=5.0,
                           rate_tick=0.5)

    def service_run():
        service = MonitorService(config)
        for batch in batches:
            service.observe(batch)
        return service.finalize()

    yield ("service_end_to_end", n, service_run)


def run_suite(scale, repeats):
    full = scale == "full"
    n = 1_000_000 if full else 200_000
    times = _stream(n)
    chunks = _chunks(times)
    edges = np.arange(0.0, float(times[-1]) + 1.0, 0.01)

    results = {}
    for name, n_events, fn in monitor_cases(scale):
        base_s, _ = _time(lambda: _array_baseline(chunks, edges), repeats)
        case_s, out = _time(fn, repeats)
        row = {
            "case_s": round(case_s, 6),
            "array_baseline_s": round(base_s, 6),
            "ratio": round(case_s / base_s, 3),
            "n_events": int(n_events),
            "events_per_second": round(n_events / case_s, 1),
        }
        if name == "service_end_to_end":
            row["n_snapshots"] = len(out.snapshots)
            row["memory_bytes"] = int(out.memory_bytes)
            row["final_verdict"] = out.final_verdict
        results[name] = row
        print(f"{name:20s} {case_s:9.4f}s  base {base_s:9.4f}s  "
              f"ratio {row['ratio']:8.2f}  "
              f"{row['events_per_second']:>12,.0f} ev/s")
    return results


def check_against(baseline_path, scale, results, factor=1.5):
    """Fail when any case's normalized ratio regressed past ``factor`` x
    the recorded one (machine speed cancels)."""
    payload = json.loads(Path(baseline_path).read_text())
    base = payload.get("scales", {}).get(scale)
    if base is None:
        raise SystemExit(f"baseline {baseline_path} has no '{scale}' scale")
    failures = []
    for name, now in results.items():
        then = base.get(name)
        if then is None:
            continue  # new case: no baseline yet
        if now["case_s"] < 0.005 and now["ratio"] <= then["ratio"]:
            continue  # timer-resolution noise, and not slower anyway
        if now["ratio"] > factor * then["ratio"]:
            failures.append(
                f"{name}: normalized ratio {now['ratio']:.3f} exceeds "
                f"{factor}x baseline {then['ratio']:.3f}"
            )
    if failures:
        raise SystemExit("monitor benchmark regressions:\n  "
                         + "\n  ".join(failures))
    print(f"check passed: no case slower than {factor}x its recorded ratio")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=str(Path(__file__).parent
                                             / "BENCH_monitor.json"))
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a recorded baseline and fail "
                             "on >1.5x normalized regressions")
    args = parser.parse_args(argv)

    results = run_suite(args.scale, args.repeats)
    if args.check:
        check_against(args.check, args.scale, results)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = (json.loads(out.read_text())
               if out.exists() else {"script": "benchmarks/bench_monitor.py"})
    payload.setdefault("scales", {})[args.scale] = results
    payload["repeats"] = args.repeats
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
