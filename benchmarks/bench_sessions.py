"""Section III side analyses: the X11 session conjecture and the
weather-map preprocessing step."""

from conftest import emit

from repro.experiments import weathermap, x11_sessions


def test_x11_conjecture(run_once):
    result = run_once(x11_sessions, seed=0)
    emit(result)
    # the paper's conjecture, confirmed: connections not Poisson, sessions
    # Poisson
    assert result.conjecture_confirmed


def test_weathermap_preprocessing(run_once):
    result = run_once(weathermap, seed=0)
    emit(result)
    assert not result.with_periodic.poisson_consistent
    assert result.without_periodic.poisson_consistent
    assert len(result.removed) == 1
