"""Fig. 6: 5 s-bin TELNET counts, trace vs exponential synthesis.

Paper numbers: means 59 vs 57 packets per 5 s; variances 672 vs 260."""

from conftest import emit

from repro.experiments import fig06


def test_fig06(run_once):
    result = run_once(fig06, seed=7, duration=7200.0)
    emit(result)
    # equal means, unequal variance — the figure's whole point
    assert abs(result.trace_mean - result.exp_mean) < 0.1 * result.exp_mean
    assert result.variance_ratio > 1.25  # paper: ~2.6; shape preserved
