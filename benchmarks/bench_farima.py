"""Ablation: FARIMA(0,d,0) as the alternative LRD model (Section VII-D).

"This could be due to ... better fits to other self-similar models such as
fractional ARIMA processes" — the bench checks both Whittle variants agree
on H for LRD traffic and that FARIMA synthesis round-trips its own d."""

from repro.selfsim import (
    farima_sample,
    farima_whittle_estimate,
    fgn_sample,
    whittle_estimate,
)


def test_farima_roundtrip_and_cross_fit(run_once):
    est = run_once(lambda **kw: farima_whittle_estimate(
        farima_sample(16384, 0.3, seed=kw.get("seed", 0))
    ), seed=5)
    print(f"\nFARIMA d=0.3: estimated d={est.d:.3f} (H={est.hurst:.3f})")
    assert abs(est.d - 0.3) < 0.04
    # cross-model agreement on an fGn series
    x = fgn_sample(16384, 0.8, seed=6)
    h_fgn = whittle_estimate(x).hurst
    h_farima = farima_whittle_estimate(x).hurst
    print(f"fGn H=0.8: fGn-Whittle {h_fgn:.3f}, FARIMA-Whittle {h_farima:.3f}")
    assert abs(h_fgn - h_farima) < 0.08
