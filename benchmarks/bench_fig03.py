"""Fig. 3: TELNET packet interarrival CDFs — Tcplib vs trace vs exponential
fits.  Paper shape: Tcplib and the trace agree above 0.1 s; both exponential
fits are very poor, overestimating short gaps and underestimating long ones."""

from conftest import emit

from repro.experiments import fig03


def test_fig03(run_once):
    result = run_once(fig03, seed=0, duration=7200.0)
    emit(result)
    assert result.agreement_above_100ms < 0.08
    assert result.exp_underestimates_tail
    # anchor points the paper quotes for the real data
    import numpy as np

    i_8ms = int(np.searchsorted(result.grid, 0.008))
    assert result.trace_cdf[i_8ms] < 0.05  # "under 2% were less than 8 ms"
    i_1s = int(np.searchsorted(result.grid, 1.0))
    assert result.trace_cdf[i_1s] < 0.90  # "over 15% were more than 1 s"
    # Section IV's Pareto fits: body beta ~ 0.9, upper-3% tail beta ~ 0.95
    assert 0.7 < result.body_pareto_shape < 1.4
    assert 0.75 < result.tail_pareto_shape < 1.2
