"""Section VII-C estimator battery on processes of known structure:
Whittle + Beran must accept fGn of known H and flag Poisson counts as
short-range dependent."""

import numpy as np

from repro.selfsim import fgn_sample, hurst_panel


def test_hurst_battery_on_fgn(run_once):
    panel = run_once(hurst_panel, process=fgn_sample(16384, 0.8, seed=17) + 50.0)
    print()
    print("fGn(H=0.8) panel:", panel.summary_row())
    assert abs(panel.whittle.hurst - 0.8) < 0.05
    assert panel.consistent_with_fgn


def test_hurst_battery_on_poisson(run_once):
    rng = np.random.default_rng(18)
    panel = run_once(hurst_panel, process=rng.poisson(30, 16384).astype(float))
    print()
    print("Poisson panel:", panel.summary_row())
    assert abs(panel.median_hurst - 0.5) < 0.1
    assert not panel.long_range_dependent_looking
