"""Benchmarks for the experiment engine: cold vs. warm cache, pool dispatch.

The acceptance bar for the engine is that a warm-cache rerun replays an
experiment battery in a small fraction of its cold wall time, and that
parallel dispatch returns the same outputs as the serial path.  These
benches measure both on a trio of sub-second experiments so the harness
stays quick.
"""

import numpy as np

from repro.engine import ResultCache, run_experiments
from repro.selfsim import CountProcess, slope_bootstrap

FAST = ["fig03", "fig04", "weathermap"]


def test_engine_cold_run(benchmark, tmp_path):
    cache = ResultCache(tmp_path)

    def cold():
        cache.clear()
        return run_experiments(FAST, master_seed=0, cache=cache)

    report = benchmark.pedantic(cold, iterations=1, rounds=1, warmup_rounds=0)
    assert report.ok
    assert all(r.metrics.cache == "miss" for r in report.runs)


def test_engine_warm_run(benchmark, tmp_path):
    cache = ResultCache(tmp_path)
    cold = run_experiments(FAST, master_seed=0, cache=cache)

    warm = benchmark(
        lambda: run_experiments(FAST, master_seed=0, cache=cache)
    )
    assert all(r.metrics.cache == "hit" for r in warm.runs)
    assert warm.outputs() == cold.outputs()
    # the whole point of the cache: warm replay is a tiny fraction of cold
    assert warm.total_wall_s < 0.2 * cold.total_wall_s


def test_engine_parallel_dispatch(benchmark, tmp_path):
    def parallel():
        return run_experiments(
            FAST, master_seed=0, jobs=2,
            cache=ResultCache(tmp_path / "p"), use_cache=False,
        )

    report = benchmark.pedantic(parallel, iterations=1, rounds=1,
                                warmup_rounds=0)
    assert report.ok


def test_kernel_slope_bootstrap(benchmark):
    """The vectorized variance-time bootstrap (one gather, no per-replicate
    concatenates)."""
    rng = np.random.default_rng(12)
    cp = CountProcess(rng.poisson(8, 20000).astype(float), 0.5)
    point, (lo, hi) = benchmark(slope_bootstrap, cp, n_boot=200, seed=3)
    assert lo <= point <= hi
