"""Fig. 12: variance-time plots of aggregate LBL PKT traffic (+ Whittle and
Beran verdicts).  Paper shape: every trace shows large-scale correlations
(slopes far shallower than -1); some but not all are consistent with fGn."""

from conftest import emit

from repro.experiments import fig12


def test_fig12(run_once):
    result = run_once(fig12, seed=8, hours=0.5)
    emit(result)
    assert len(result.rows_) == 5
    assert result.all_show_large_scale_correlations
    for r in result.rows_:
        assert r.whittle_hurst > 0.55
