"""Fig. 10: share of LBL PKT FTPDATA traffic from the largest 2% / 0.5% of
connection bursts.  Paper: 2% tails hold ~50-85%; volatile because a trace
holds only a few hundred bursts."""

from conftest import emit

from repro.experiments import fig10


def test_fig10(run_once):
    result = run_once(fig10, seed=7)
    emit(result)
    assert len(result.rows_) == 4
    for r in result.rows_:
        assert r.top2_share > 0.08  # far above the 2% "fair share"
        assert r.top05_share <= r.top2_share
