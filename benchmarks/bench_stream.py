"""Benchmarks for the out-of-core streaming scan (repro.stream).

The acceptance bar for the subsystem:

* a multi-million-packet trace is analyzed end-to-end (count ladder,
  quantile sketch, tail β, variance-time) in one bounded-memory pass —
  the default headline run is 10M packets, tunable via
  ``REPRO_BENCH_PACKETS``;
* peak *accumulator* memory is independent of trace length: scans of
  traces with 4x the packets over the same busy period report the same
  sketch footprint;
* a sharded ``jobs=N`` scan is bit-identical to the single-process scan.

Run explicitly (benchmarks are excluded from the tier-1 suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_stream.py -v
    REPRO_BENCH_PACKETS=1000000 PYTHONPATH=src python -m pytest ...
"""

import os

import numpy as np
import pytest

from repro.stream import SummaryConfig, scan_trace, write_stream_trace

#: Headline trace size; override with REPRO_BENCH_PACKETS for quick runs.
N_HEADLINE = int(os.environ.get("REPRO_BENCH_PACKETS", 10_000_000))

#: 0.1 s bins over a 2 h busy period — 72 000 base bins, the paper's shape.
CONFIG = SummaryConfig(bin_width=0.1)


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("stream-bench")


def _trace(trace_dir, n_packets, seed=0):
    path = trace_dir / f"trace-{n_packets}.txt"
    if not path.exists():
        info = write_stream_trace(path, n_packets=n_packets, seed=seed,
                                  hours=2.0, window_hours=0.25)
        assert info.n_packets == n_packets
    return path


def test_stream_scan_headline(benchmark, trace_dir):
    """End-to-end analysis of the headline (default 10M-packet) trace."""
    path = _trace(trace_dir, N_HEADLINE)
    file_bytes = path.stat().st_size

    report = benchmark.pedantic(
        lambda: scan_trace(path, jobs=1, config=CONFIG),
        iterations=1, rounds=1, warmup_rounds=0,
    )
    assert report.n_records == N_HEADLINE
    # The whole battery came out of the single pass:
    assert report.summary.counts.as_count_process().n_bins > 10_000
    curve = report.summary.counts.variance_time()
    assert np.isfinite(curve.slope(min_level=5))
    assert report.summary.gap_quantiles.total_weight == N_HEADLINE - 1
    _, beta, _ = report.summary.interarrival_tail_beta(
        report.summary.best_tail_fraction(0.03, "gap"))
    assert np.isfinite(beta) and beta > 0
    # Bounded memory: the sketch footprint is set by the 2 h window and the
    # sketch capacities (~7 MB), never by the trace — at the 10M default
    # that is ~2% of the file.
    assert report.accumulator_nbytes < 16 * 1024 * 1024
    rate = report.n_records / report.total_wall_s
    print(f"\n[headline] {N_HEADLINE:,d} packets, {file_bytes / 1e6:.0f} MB, "
          f"{report.total_wall_s:.1f}s, {rate:,.0f} rows/s, "
          f"accumulators {report.accumulator_nbytes / 1e6:.2f} MB "
          f"({100 * report.accumulator_nbytes / file_bytes:.1f}% of file)")


def test_accumulator_memory_independent_of_trace_length(trace_dir):
    """Same 2 h busy period, 4x the packets: identical sketch footprint.

    The CountLadder is sized by the observation window, every other sketch
    by its capacity — none by how many records streamed through.
    """
    sizes = [250_000, 500_000, 1_000_000]
    footprints = {}
    for n in sizes:
        report = scan_trace(_trace(trace_dir, n), jobs=1, config=CONFIG)
        assert report.n_records == n
        footprints[n] = report.accumulator_nbytes
    smallest, largest = footprints[sizes[0]], footprints[sizes[-1]]
    # The only length-dependent term is the final partial bin of the count
    # ladder's window (trace span jitters by a few bins across scales).
    assert abs(largest - smallest) / smallest < 0.01, footprints
    print(f"\n[memory] accumulator bytes across {sizes}: {footprints}")


def test_sharded_scan_matches_single_process(benchmark, trace_dir):
    """--jobs 4 over ~8 chunks: bit-identical to the sequential scan."""
    path = _trace(trace_dir, 1_000_000)
    chunk_bytes = max(path.stat().st_size // 8, 1 << 20)
    single = scan_trace(path, jobs=1, config=CONFIG,
                        target_chunk_bytes=chunk_bytes)

    sharded = benchmark.pedantic(
        lambda: scan_trace(path, jobs=4, config=CONFIG,
                           target_chunk_bytes=chunk_bytes),
        iterations=1, rounds=1, warmup_rounds=0,
    )
    assert len(sharded.chunk_metrics) > 4
    assert np.array_equal(single.summary.counts.finalize(),
                          sharded.summary.counts.finalize())
    assert np.array_equal(single.summary.gap_tail.values,
                          sharded.summary.gap_tail.values)
    assert single.summary.gap_moments.mean == sharded.summary.gap_moments.mean
    assert single.summary.gap_quantiles.quantile(0.5) == \
        sharded.summary.gap_quantiles.quantile(0.5)
    svc = single.summary.counts.variance_time()
    pvc = sharded.summary.counts.variance_time()
    assert np.array_equal(svc.variances, pvc.variances)
