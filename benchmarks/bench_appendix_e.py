"""Appendix E: M/G/infinity with log-normal service is NOT long-range
dependent — per-decade autocovariance mass vanishes, unlike Pareto's."""

from conftest import emit

from repro.experiments import appendix_e


def test_appendix_e(run_once):
    result = run_once(appendix_e)
    emit(result)
    assert result.lognormal_summable
    assert result.pareto_nonsummable
