"""Appendix B: the tail taxonomy — CMEX decreasing for uniform, flat for
exponential, increasing (and linear with slope 1/(beta-1)) for Pareto;
scale invariance and truncation-from-below invariance hold exactly."""

from conftest import emit

from repro.experiments import appendix_b


def test_appendix_b(run_once):
    result = run_once(appendix_b, seed=0)
    emit(result)
    assert result.taxonomy_correct
    theory = 1.0 / (result.pareto_shape - 1.0)
    assert abs(result.pareto_cmex_slope - theory) < 0.3 * theory
    assert result.scale_invariance_spread < 1.001
    assert result.truncation_shape_error < 0.1
