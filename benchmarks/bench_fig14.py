"""Fig. 14: count process of i.i.d. Pareto(beta=1) interarrivals, b = 10^3,
nine seeds.  Paper shape: alternating bursts and lulls with a fairly regular
ceiling of activity."""

from conftest import emit

from repro.arrivals import expected_burst_length
from repro.experiments import fig14


def test_fig14(run_once):
    result = run_once(fig14, seed=9, n_seeds=9)
    emit(result)
    assert len(result.panels) == 9
    assert 0.05 < result.occupied_fraction < 0.95
    theory = expected_burst_length(1e3, 1.0, 1.0)  # log(10^3) ~ 6.9
    assert 0.3 * theory < result.mean_burst < 4.0 * theory
