"""Fig. 4 + the multiplexing experiment.

Paper numbers: 1,926 Tcplib vs 2,204 exponential arrivals over one 2000 s
connection; multiplexed 100 connections give 1 s-bin mean ~92 for both but
variance ~240 (Tcplib) vs ~97 (exponential) — a ~2.5x ratio that high
multiplexing does not smooth away."""

from conftest import emit

from repro.experiments import fig04


def test_fig04(run_once):
    result = run_once(fig04, seed=2)
    emit(result)
    # single-connection counts in the paper's ballpark
    assert 1200 < result.n_tcplib < 2600
    assert 1500 < result.n_exp < 2600
    # matched aggregate mean, strongly unequal variance
    assert abs(result.mux_mean_tcplib - result.mux_mean_exp) < 0.15 * result.mux_mean_exp
    assert 1.6 < result.variance_ratio < 4.5  # paper: ~2.5
    # Tcplib visibly more clustered
    assert result.clustering_ratio > 1.5
