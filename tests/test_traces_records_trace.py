"""Tests for trace records and containers."""

import numpy as np
import pytest

from repro.selfsim import CountProcess
from repro.traces import (
    ConnectionRecord,
    ConnectionTrace,
    Direction,
    PacketRecord,
    PacketTrace,
    interarrival_times,
)


def make_connections():
    return [
        ConnectionRecord(10.0, 5.0, "TELNET", bytes_orig=100, bytes_resp=2000),
        ConnectionRecord(0.0, 2.0, "FTP", session_id=1),
        ConnectionRecord(1.0, 1.0, "FTPDATA", bytes_resp=5000, session_id=1),
        ConnectionRecord(3.0, 1.5, "FTPDATA", bytes_resp=7000, session_id=1),
        ConnectionRecord(20.0, 4.0, "FTPDATA", bytes_resp=100, session_id=2),
    ]


class TestConnectionRecord:
    def test_end_time_and_total(self):
        r = ConnectionRecord(5.0, 2.5, "TELNET", bytes_orig=10, bytes_resp=20)
        assert r.end_time == 7.5
        assert r.total_bytes == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            ConnectionRecord(-1.0, 1.0, "TELNET")
        with pytest.raises(ValueError):
            ConnectionRecord(0.0, -1.0, "TELNET")
        with pytest.raises(ValueError):
            ConnectionRecord(0.0, 1.0, "TELNET", bytes_orig=-5)


class TestConnectionTrace:
    def test_sorted_by_start(self):
        tr = ConnectionTrace("t", make_connections())
        assert np.all(np.diff(tr.start_times) >= 0)

    def test_len_and_iter(self):
        tr = ConnectionTrace("t", make_connections())
        assert len(tr) == 5
        assert sum(1 for _ in tr) == 5

    def test_record_roundtrip(self):
        recs = make_connections()
        tr = ConnectionTrace("t", recs)
        got = sorted((tr.record(i) for i in range(len(tr))),
                     key=lambda r: (r.start_time, r.protocol))
        want = sorted(recs, key=lambda r: (r.start_time, r.protocol))
        assert got == want

    def test_arrival_times_by_protocol(self):
        tr = ConnectionTrace("t", make_connections())
        assert tr.arrival_times("FTPDATA").tolist() == [1.0, 3.0, 20.0]
        assert tr.connection_count("TELNET") == 1

    def test_total_bytes(self):
        tr = ConnectionTrace("t", make_connections())
        assert tr.total_bytes("FTPDATA") == 12100

    def test_sessions_grouping(self):
        tr = ConnectionTrace("t", make_connections())
        groups = tr.sessions("FTPDATA")
        assert set(groups) == {1, 2}
        assert groups[1].size == 2
        assert groups[2].size == 1

    def test_subset(self):
        tr = ConnectionTrace("t", make_connections())
        sub = tr.subset(tr.protocol_mask("FTPDATA"), name="sub")
        assert len(sub) == 3
        assert sub.name == "sub"

    def test_hourly_counts(self):
        recs = [ConnectionRecord(3600.0 * h + 10.0, 1.0, "TELNET")
                for h in (0, 0, 5, 25)]  # hour 25 wraps to hour 1
        tr = ConnectionTrace("t", recs)
        counts = tr.hourly_counts("TELNET")
        assert counts[0] == 2
        assert counts[1] == 1
        assert counts[5] == 1

    def test_empty_trace(self):
        tr = ConnectionTrace("empty", [])
        assert len(tr) == 0
        assert tr.duration == 0.0


def make_packets():
    return [
        PacketRecord(0.5, "TELNET", 1, Direction.ORIGINATOR, 1, True),
        PacketRecord(0.1, "TELNET", 1, Direction.ORIGINATOR, 0, False),
        PacketRecord(0.7, "TELNET", 2, Direction.RESPONDER, 10, True),
        PacketRecord(1.5, "FTPDATA", 3, Direction.RESPONDER, 512, True),
    ]


class TestPacketTrace:
    def test_sorted(self):
        pt = PacketTrace("p", make_packets())
        assert np.all(np.diff(pt.timestamps) >= 0)

    def test_select_protocol_direction_userdata(self):
        pt = PacketTrace("p", make_packets())
        telnet_orig = pt.packet_times("TELNET", Direction.ORIGINATOR,
                                      user_data_only=True)
        assert telnet_orig.tolist() == [0.5]

    def test_connection_packet_times(self):
        pt = PacketTrace("p", make_packets())
        assert pt.connection_packet_times(1).tolist() == [0.1, 0.5]

    def test_count_process(self):
        pt = PacketTrace("p", make_packets())
        cp = pt.count_process(1.0, end=2.0)
        assert isinstance(cp, CountProcess)
        assert cp.counts.tolist() == [3.0, 1.0]

    def test_connections_mapping(self):
        pt = PacketTrace("p", make_packets())
        conns = pt.connections("TELNET")
        assert set(conns) == {1, 2}

    def test_array_constructor(self):
        pt = PacketTrace("p", timestamps=[3.0, 1.0, 2.0])
        assert pt.timestamps.tolist() == [1.0, 2.0, 3.0]
        assert len(pt) == 3

    def test_record_materialization(self):
        pt = PacketTrace("p", make_packets())
        r = pt.record(0)
        assert isinstance(r, PacketRecord)
        assert r.timestamp == 0.1

    def test_packet_record_validation(self):
        with pytest.raises(ValueError):
            PacketRecord(-1.0, "TELNET", 1)
        with pytest.raises(ValueError):
            PacketRecord(0.0, "TELNET", 1, size=-1)


def test_interarrival_times_sorts_first():
    gaps = interarrival_times([5.0, 1.0, 3.0])
    assert gaps.tolist() == [2.0, 2.0]


class TestByteProcess:
    def test_byte_weighted_counts(self):
        pt = PacketTrace("p", [
            PacketRecord(0.2, "FTPDATA", 1, Direction.RESPONDER, 512, True),
            PacketRecord(0.4, "FTPDATA", 1, Direction.RESPONDER, 256, True),
            PacketRecord(1.2, "FTPDATA", 1, Direction.RESPONDER, 100, True),
        ])
        cp = pt.count_process(1.0, weight_by_size=True, end=2.0)
        assert cp.counts.tolist() == [768.0, 100.0]

    def test_unweighted_unchanged(self):
        pt = PacketTrace("p", [
            PacketRecord(0.2, "FTPDATA", 1, Direction.RESPONDER, 512, True),
            PacketRecord(1.2, "FTPDATA", 1, Direction.RESPONDER, 100, True),
        ])
        cp = pt.count_process(1.0, end=2.0)
        assert cp.counts.tolist() == [1.0, 1.0]

    def test_bytes_conserved(self):
        import numpy as np

        rng = np.random.default_rng(5)
        pt = PacketTrace(
            "p",
            timestamps=rng.uniform(0, 10, 500),
            sizes=rng.integers(1, 1000, 500),
        )
        cp = pt.count_process(0.5, weight_by_size=True, start=0.0, end=10.0)
        assert cp.total == pytest.approx(float(pt.sizes.sum()))
