"""Tests for Figs. 12-15, the appendices, and the delay experiment."""

import numpy as np
import pytest

from repro.experiments import (
    appendix_c,
    appendix_d,
    appendix_e,
    delay_experiment,
    fig12,
    fig13,
    fig14,
    fig15,
    scale_comparison,
)


class TestFig12And13:
    @pytest.fixture(scope="class")
    def lbl(self):
        return fig12(seed=8, traces=("LBL PKT-1", "LBL PKT-4"), hours=0.5)

    @pytest.fixture(scope="class")
    def wrl(self):
        return fig13(seed=9, hours=0.5)

    def test_large_scale_correlations_everywhere(self, lbl, wrl):
        """Section VII-D: every trace exhibits large-scale correlations
        (variance-time slope decisively shallower than -1)."""
        assert lbl.all_show_large_scale_correlations
        assert wrl.all_show_large_scale_correlations

    def test_hurst_estimates_elevated(self, lbl):
        for r in lbl.rows_:
            assert r.whittle_hurst > 0.55
            assert r.vt_hurst > 0.55

    def test_ci_bounds_ordered(self, lbl):
        for r in lbl.rows_:
            lo, hi = r.whittle_ci
            assert lo < r.whittle_hurst < hi

    def test_wrl_has_four_rows(self, wrl):
        assert len(wrl.rows_) == 4

    def test_render(self, lbl, wrl):
        assert "Fig. 12" in lbl.render()
        assert "Fig. 13" in wrl.render()


class TestFig14And15:
    @pytest.fixture(scope="class")
    def small(self):
        return fig14(seed=9, n_seeds=5)

    def test_panel_count(self, small):
        assert len(small.panels) == 5

    def test_bursts_and_lulls_present(self, small):
        """The beta=1 process alternates bursts and lulls at every scale."""
        assert small.mean_burst > 1.0
        assert small.mean_lull > 1.0
        assert 0.05 < small.occupied_fraction < 0.95

    def test_burst_length_near_theory(self, small):
        """Appendix C: E[burst] ~ log(b/a) = log(10^3) ~ 6.9 bins."""
        assert 2.0 < small.mean_burst < 25.0

    def test_scale_comparison_matches_paper(self):
        """Burst ratio modest, lull ratio near 1 across a 10^3x scale jump
        (the paper saw 2.6 / 1.2 across 10^4x)."""
        sc = scale_comparison(seed=10, large_b=1e6, n_seeds=4, n_bins=600)
        assert 1.0 < sc.burst_ratio < 4.5
        assert 0.2 < sc.lull_ratio < 3.0
        assert "burst ratio" in sc.render()

    def test_fig15_uses_large_bins(self):
        r = fig15(seed=11, n_bins=60, n_seeds=2)
        assert r.bin_width == 1e7
        assert len(r.panels) == 2

    def test_render(self, small):
        assert "Pareto" in small.render()


class TestAppendixC:
    @pytest.fixture(scope="class")
    def result(self):
        return appendix_c(seed=1, n_bins=2000)

    def test_all_regimes_confirmed(self, result):
        assert result.regime_confirmed(2.0)
        assert result.regime_confirmed(1.0)
        assert result.regime_confirmed(0.5)

    def test_lull_invariance(self, result):
        """Median lull (in bins) roughly invariant in b for beta = 1.

        (The *mean* lull is a poor statistic here: lull lengths are
        Pareto(beta=1)-tailed with infinite mean, so sample means fluctuate
        wildly; the distributional invariance shows in the quantiles.)"""
        lulls = [r["median_lull"] for r in result.rows_ if r["beta"] == 1.0]
        assert max(lulls) / min(lulls) < 5.0

    def test_render(self, result):
        assert "Appendix C" in result.render()


class TestAppendixD:
    @pytest.fixture(scope="class")
    def result(self):
        return appendix_d(seed=2, n_steps=32768)

    def test_marginal_mean_matches(self, result):
        assert result.marginal_mean_measured == pytest.approx(
            result.marginal_mean_theory, rel=0.15
        )

    def test_autocovariance_tracks_closed_form(self, result):
        for c, s in zip(result.closed_form[:3], result.simulated[:3]):
            assert s == pytest.approx(c, rel=0.6)

    def test_hurst_elevated(self, result):
        """Whittle's fGn-shape assumption biases the estimate on M/G/inf
        counts, but H must sit decisively above 1/2 and near theory."""
        assert result.whittle_hurst > 0.6
        assert result.hurst_theory == pytest.approx(0.75)

    def test_render(self, result):
        assert "Appendix D" in result.render()


class TestAppendixE:
    @pytest.fixture(scope="class")
    def result(self):
        return appendix_e()

    def test_lognormal_summable(self, result):
        assert result.lognormal_summable

    def test_pareto_nonsummable(self, result):
        assert result.pareto_nonsummable

    def test_increments_behave(self, result):
        assert result.pareto_increments[-1] > result.pareto_increments[0]
        assert result.lognormal_increments[-1] < result.lognormal_increments[0]

    def test_render(self, result):
        assert "Appendix E" in result.render()


class TestDelayExperiment:
    def test_ratio_above_one(self):
        r = delay_experiment(seed=3, n_connections=40, duration=600.0)
        assert r.comparison.mean_delay_ratio > 1.3
        assert "delay" in r.render().lower()
