"""Tests for tail-concentration diagnostics (Section VI / Fig. 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential, Pareto
from repro.stats import (
    concentration_curve,
    empirical_ccdf,
    exponential_top_share,
    mean_exceedance_curve,
    top_fraction_share,
)


class TestTopFractionShare:
    def test_uniform_sizes(self):
        share = top_fraction_share(np.ones(1000), 0.1)
        assert share == pytest.approx(0.1)

    def test_single_giant(self):
        sizes = np.concatenate([[1e9], np.ones(999)])
        assert top_fraction_share(sizes, 0.005) > 0.99

    def test_pareto_concentration_far_exceeds_exponential(self):
        """The paper's core FTP claim: Pareto bursts put 30-60% of mass in
        the top 0.5%, versus ~3% for exponential sizes."""
        heavy = Pareto(1.0, 1.1).sample(50000, seed=1)
        light = Exponential(1.0).sample(50000, seed=2)
        assert top_fraction_share(heavy, 0.005) > 0.25
        assert top_fraction_share(light, 0.005) < 0.06

    def test_zero_fraction(self):
        assert top_fraction_share([1.0, 2.0], 0.0) == 0.0

    def test_full_fraction(self):
        assert top_fraction_share([1.0, 2.0], 1.0) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            top_fraction_share([], 0.5)

    def test_zero_total_raises(self):
        with pytest.raises(ValueError):
            top_fraction_share([0.0, 0.0], 0.5)

    @given(st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_fraction(self, f):
        sizes = Pareto(1.0, 1.3).sample(2000, seed=3)
        assert top_fraction_share(sizes, f) >= top_fraction_share(sizes, f / 2)


class TestConcentrationCurve:
    def test_endpoints(self):
        c = concentration_curve([5.0, 3.0, 2.0])
        assert c.share_at(0.0) == 0.0
        assert c.share_at(1.0) == pytest.approx(1.0)

    def test_monotone_and_concave(self):
        c = concentration_curve(Pareto(1.0, 1.2).sample(5000, seed=4))
        fs = np.linspace(0, 1, 50)
        ys = [c.share_at(f) for f in fs]
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        # largest-first ordering makes the curve concave: big jumps first
        assert ys[5] > fs[5]

    def test_matches_top_fraction_share(self):
        sizes = Pareto(1.0, 1.1).sample(2000, seed=5)
        c = concentration_curve(sizes)
        assert c.share_at(0.1) == pytest.approx(top_fraction_share(sizes, 0.1), abs=0.01)

    def test_matches_top_fraction_share_below_one_item(self):
        """Regression: for fraction < 1/n the curve used to interpolate
        from the (0, 0) anchor — reporting ~10x less than the ceil
        convention of ``top_fraction_share`` at the paper's 0.5% tail."""
        sizes = np.concatenate([[1e6], np.ones(149)])  # n = 150 < 1/0.005
        c = concentration_curve(sizes)
        exact = top_fraction_share(sizes, 0.005)
        assert c.share_at(0.005) == pytest.approx(exact)
        assert c.share_at(0.005) > 0.99  # the giant item's full share

    @given(st.floats(min_value=1e-4, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_share_at_always_matches_top_fraction_share(self, f):
        sizes = Pareto(1.0, 1.2).sample(173, seed=6)
        c = concentration_curve(sizes)
        assert c.share_at(f) == pytest.approx(top_fraction_share(sizes, f))


class TestExponentialTopShare:
    def test_paper_anchor(self):
        """'the upper 0.5% tail of an exponential distribution always holds
        about 3% of the entire mass'."""
        assert exponential_top_share(0.005) == pytest.approx(0.0315, abs=0.002)

    def test_independent_of_mean_by_construction(self):
        # identity check against a simulated exponential of arbitrary mean
        sizes = Exponential(42.0).sample(400000, seed=6)
        assert top_fraction_share(sizes, 0.02) == pytest.approx(
            exponential_top_share(0.02), abs=0.01
        )

    def test_extremes(self):
        assert exponential_top_share(0.0) == 0.0
        assert exponential_top_share(1.0) == pytest.approx(1.0)


class TestCCDFAndCMEX:
    def test_ccdf_shape(self):
        # (n - i + 1)/n plotting positions: the deepest tail point is 1/n,
        # never 0 (which would vanish from a log-log plot).
        x, sf = empirical_ccdf([1.0, 2.0, 3.0, 4.0])
        assert sf.tolist() == pytest.approx([1.0, 0.75, 0.5, 0.25])

    def test_ccdf_largest_sample_strictly_positive(self):
        """Regression: the max used to get survival 0.0 -> -inf on log axes,
        silently dropping the most informative point for beta estimation."""
        x, sf = empirical_ccdf(Pareto(1.0, 1.2).sample(500, seed=11))
        assert np.all(sf > 0)
        assert sf[-1] == pytest.approx(1.0 / 500)
        assert np.all(np.isfinite(np.log(sf)))

    def test_ccdf_tied_samples(self):
        x, sf = empirical_ccdf([2.0, 1.0, 2.0, 2.0, 3.0])
        assert x.tolist() == [1.0, 2.0, 2.0, 2.0, 3.0]
        # positions stay in (0, 1], nonincreasing, and ties keep their own
        # plotting positions
        assert np.all(sf > 0) and np.all(sf <= 1.0)
        assert np.all(np.diff(sf) <= 0)
        assert sf.tolist() == pytest.approx([1.0, 0.8, 0.6, 0.4, 0.2])

    def test_ccdf_single_sample(self):
        x, sf = empirical_ccdf([7.0])
        assert x.tolist() == [7.0]
        assert sf.tolist() == [1.0]

    def test_ccdf_loglog_slope_recovers_pareto(self):
        x, sf = empirical_ccdf(Pareto(1.0, 1.5).sample(100000, seed=7))
        keep = (sf > 1e-3) & (x > 2.0)
        slope = np.polyfit(np.log(x[keep]), np.log(sf[keep]), 1)[0]
        assert slope == pytest.approx(-1.5, abs=0.1)

    def test_cmex_increasing_for_pareto(self):
        t, c = mean_exceedance_curve(Pareto(1.0, 1.5).sample(20000, seed=8))
        assert c[-1] > c[0]

    def test_cmex_flat_for_exponential(self):
        t, c = mean_exceedance_curve(Exponential(2.0).sample(200000, seed=9))
        assert c[-3] == pytest.approx(c[0], rel=0.25)

    def test_cmex_decreasing_for_uniform(self):
        rng = np.random.default_rng(10)
        t, c = mean_exceedance_curve(rng.uniform(0, 1, 50000))
        assert c[-1] < c[0]

    def test_small_sample_raises(self):
        with pytest.raises(ValueError):
            mean_exceedance_curve([1.0, 2.0])
