"""Tests for the independence tests and binomial roll-ups of Appendix A."""

import numpy as np
import pytest

from repro.stats import (
    acf,
    autocorrelation,
    binomial_lower_tail,
    binomial_upper_tail,
    lag1_independence_test,
    pass_rate_verdict,
    sign_bias_verdict,
)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        assert autocorrelation([1.0, 2.0, 3.0, 1.0], 0) == 1.0

    def test_alternating_series_negative_r1(self):
        x = np.tile([1.0, -1.0], 50)
        assert autocorrelation(x, 1) < -0.9

    def test_trending_series_positive_r1(self):
        x = np.arange(100, dtype=float)
        assert autocorrelation(x, 1) > 0.9

    def test_white_noise_near_zero(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=10000)
        assert abs(autocorrelation(x, 1)) < 0.03

    def test_constant_series_raises(self):
        with pytest.raises(ValueError):
            autocorrelation([2.0, 2.0, 2.0], 1)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], 5)

    def test_negative_lag_raises(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0, 3.0], -1)

    def test_acf_matches_direct(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=500)
        a = acf(x, 10)
        for k in range(1, 11):
            assert a[k] == pytest.approx(autocorrelation(x, k), abs=1e-9)

    def test_acf_lag_bounds(self):
        with pytest.raises(ValueError):
            acf(np.ones(5) + np.arange(5), 5)


class TestLag1Test:
    def test_independent_exponentials_pass_mostly(self):
        passes = 0
        rng = np.random.default_rng(3)
        for _ in range(200):
            x = rng.exponential(1.0, size=100)
            if lag1_independence_test(x).passed:
                passes += 1
        assert passes > 180  # ~95% expected

    def test_correlated_series_fails(self):
        rng = np.random.default_rng(4)
        x = np.cumsum(rng.normal(size=200)) + 100.0  # random walk: strong r1
        assert not lag1_independence_test(x).passed

    def test_threshold_value(self):
        rng = np.random.default_rng(5)
        res = lag1_independence_test(rng.exponential(1.0, 400))
        assert res.threshold == pytest.approx(1.96 / 20.0)

    def test_sign(self):
        up = lag1_independence_test(np.arange(50, dtype=float))
        assert up.sign == 1


class TestBinomialHelpers:
    def test_lower_tail_extremes(self):
        assert binomial_lower_tail(10, 10, 0.5) == pytest.approx(1.0)
        assert binomial_lower_tail(0, 10, 0.5) == pytest.approx(0.5**10)

    def test_upper_tail_extremes(self):
        assert binomial_upper_tail(0, 10, 0.5) == pytest.approx(1.0)
        assert binomial_upper_tail(10, 10, 0.5) == pytest.approx(0.5**10)

    def test_tails_complement(self):
        # P[K <= k] + P[K >= k+1] = 1
        p = binomial_lower_tail(3, 12, 0.4) + binomial_upper_tail(4, 12, 0.4)
        assert p == pytest.approx(1.0)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            binomial_lower_tail(5, 3, 0.5)
        with pytest.raises(ValueError):
            binomial_upper_tail(1, 3, 1.5)


class TestPassRateVerdict:
    def test_full_pass_consistent(self):
        assert pass_rate_verdict(20, 20).consistent

    def test_nominal_rate_consistent(self):
        assert pass_rate_verdict(95, 100).consistent

    def test_low_rate_inconsistent(self):
        assert not pass_rate_verdict(80, 100).consistent

    def test_small_sample_forgiving(self):
        """With few intervals, even a visibly low rate can't be rejected."""
        assert pass_rate_verdict(4, 5).consistent

    def test_pass_rate_property(self):
        v = pass_rate_verdict(9, 10)
        assert v.pass_rate == pytest.approx(0.9)


class TestSignBias:
    def test_balanced_signs_unbiased(self):
        v = sign_bias_verdict([1, -1] * 20)
        assert v.label == ""

    def test_all_positive_biased(self):
        v = sign_bias_verdict([1] * 20)
        assert v.positively_biased
        assert v.label == "+"

    def test_all_negative_biased(self):
        v = sign_bias_verdict([-1] * 20)
        assert v.label == "-"

    def test_zeros_ignored(self):
        v = sign_bias_verdict([0, 0, 1, -1])
        assert v.trials == 2

    def test_empty_is_unbiased(self):
        assert sign_bias_verdict([]).label == ""

    def test_small_majority_not_biased(self):
        v = sign_bias_verdict([1] * 6 + [-1] * 4)
        assert v.label == ""
