"""Tests for fGn synthesis, Whittle, Beran, R/S, and periodogram estimators."""

import numpy as np
import pytest

from repro.arrivals import pareto_mg_infinity
from repro.selfsim import (
    CountProcess,
    beran_goodness_of_fit,
    fgn_autocovariance,
    fgn_sample,
    fgn_spectral_density,
    fractional_brownian_motion,
    hurst_panel,
    periodogram,
    periodogram_hurst,
    rescaled_range,
    rs_analysis,
    whittle_estimate,
    whittle_with_gof,
)


class TestFgnAutocovariance:
    def test_lag_zero_is_sigma2(self):
        g = fgn_autocovariance(0.7, 5, sigma2=2.5)
        assert g[0] == pytest.approx(2.5)

    def test_h_half_is_white_noise(self):
        g = fgn_autocovariance(0.5, 10)
        assert np.allclose(g[1:], 0.0, atol=1e-12)

    def test_positive_correlation_for_h_above_half(self):
        g = fgn_autocovariance(0.8, 10)
        assert np.all(g[1:] > 0)

    def test_negative_correlation_for_h_below_half(self):
        g = fgn_autocovariance(0.3, 10)
        assert np.all(g[1:] < 0)

    def test_hyperbolic_decay(self):
        """gamma(k) ~ H(2H-1) k^(2H-2) for large k."""
        h = 0.8
        g = fgn_autocovariance(h, 2000)
        k = np.array([500, 1000, 2000])
        expected = h * (2 * h - 1) * k.astype(float) ** (2 * h - 2)
        assert np.allclose(g[k], expected, rtol=0.01)

    def test_bad_hurst(self):
        with pytest.raises(ValueError):
            fgn_autocovariance(1.0, 5)


class TestFgnSpectralDensity:
    def test_integrates_to_variance(self):
        lam = np.linspace(1e-5, np.pi, 400001)
        f = fgn_spectral_density(lam, 0.6)
        assert 2 * np.trapezoid(f, lam) == pytest.approx(1.0, abs=0.02)

    def test_low_frequency_divergence_for_lrd(self):
        f = fgn_spectral_density(np.array([1e-4, 1e-3]), 0.8)
        assert f[0] > f[1]  # diverges as l -> 0

    def test_flat_for_white_noise(self):
        lam = np.linspace(0.1, np.pi, 50)
        f = fgn_spectral_density(lam, 0.5)
        assert np.allclose(f, 1.0 / (2 * np.pi), rtol=0.01)

    def test_low_frequency_power_law(self):
        """f(l) ~ l^(1-2H) near zero."""
        h = 0.75
        lam = np.array([1e-5, 1e-4])
        f = fgn_spectral_density(lam, h)
        slope = np.log(f[1] / f[0]) / np.log(lam[1] / lam[0])
        assert slope == pytest.approx(1 - 2 * h, abs=0.01)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            fgn_spectral_density(np.array([0.0]), 0.7)
        with pytest.raises(ValueError):
            fgn_spectral_density(np.array([4.0]), 0.7)


class TestFgnSample:
    def test_length_and_reproducibility(self):
        a = fgn_sample(1000, 0.7, seed=1)
        b = fgn_sample(1000, 0.7, seed=1)
        assert a.size == 1000
        assert np.array_equal(a, b)

    def test_unit_variance(self):
        x = fgn_sample(100000, 0.7, seed=2)
        assert x.var() == pytest.approx(1.0, rel=0.05)

    def test_sample_autocovariance_matches_theory(self):
        x = fgn_sample(200000, 0.8, seed=3)
        g = fgn_autocovariance(0.8, 3)
        xc = x - x.mean()
        for k in (1, 2, 3):
            emp = float(np.mean(xc[:-k] * xc[k:]))
            assert emp == pytest.approx(g[k], abs=0.05)

    def test_fbm_is_cumsum(self):
        x = fractional_brownian_motion(100, 0.6, seed=4)
        assert x.size == 100
        assert np.all(np.isfinite(x))

    def test_bad_args(self):
        with pytest.raises(ValueError):
            fgn_sample(0, 0.7)
        with pytest.raises(ValueError):
            fgn_sample(10, 1.2)


class TestPeriodogram:
    def test_parseval_like_total(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=4096)
        lam, spec = periodogram(x)
        # mean of I over frequencies ~ variance / (2 pi)
        assert np.mean(spec) == pytest.approx(x.var() / (2 * np.pi), rel=0.1)

    def test_frequencies_in_range(self):
        lam, _ = periodogram(np.random.default_rng(6).normal(size=128))
        assert np.all((lam > 0) & (lam < np.pi))

    def test_short_series_raises(self):
        with pytest.raises(ValueError):
            periodogram(np.ones(4))


class TestWhittle:
    @pytest.mark.parametrize("h", [0.5, 0.6, 0.75, 0.9])
    def test_recovers_known_hurst(self, h):
        x = fgn_sample(8192, h, seed=int(h * 100))
        est = whittle_estimate(x)
        assert est.hurst == pytest.approx(h, abs=0.04)

    def test_confidence_interval_covers(self):
        hits = 0
        for seed in range(20):
            x = fgn_sample(4096, 0.7, seed=seed)
            if whittle_estimate(x).contains(0.7):
                hits += 1
        assert hits >= 15  # nominal 95%, allow slack

    def test_sigma2_estimate(self):
        x = 3.0 * fgn_sample(8192, 0.6, seed=7)
        est = whittle_estimate(x)
        assert est.sigma2 == pytest.approx(9.0, rel=0.2)

    def test_poisson_counts_give_half(self):
        rng = np.random.default_rng(8)
        x = rng.poisson(20, size=8192).astype(float)
        est = whittle_estimate(x)
        assert est.hurst == pytest.approx(0.5, abs=0.05)


class TestBeranGof:
    def test_fgn_accepted_at_nominal_rate(self):
        accepted = 0
        for seed in range(30):
            x = fgn_sample(4096, 0.7, seed=seed)
            if beran_goodness_of_fit(x, hurst=0.7).consistent():
                accepted += 1
        assert accepted >= 25

    def test_wrong_hurst_rejected(self):
        x = fgn_sample(16384, 0.9, seed=9)
        res = beran_goodness_of_fit(x, hurst=0.55)
        assert not res.consistent()

    def test_non_gaussian_lull_traffic_rejected(self):
        """FTP-like traffic with long zero-lulls is not fGn — the paper's
        explanation for FTP failing the goodness-of-fit test."""
        rng = np.random.default_rng(10)
        # bursty on/off with huge dynamic range and a point mass at zero
        x = rng.pareto(1.1, size=8192) * (rng.random(8192) < 0.05)
        res = beran_goodness_of_fit(x)
        assert not res.consistent()

    def test_pipeline_returns_both(self):
        x = fgn_sample(2048, 0.65, seed=11)
        w, g = whittle_with_gof(x)
        assert g.hurst == pytest.approx(w.hurst)


class TestRS:
    def test_rescaled_range_positive(self):
        rng = np.random.default_rng(12)
        assert rescaled_range(rng.normal(size=100)) > 0

    def test_rs_white_noise_half(self):
        rng = np.random.default_rng(13)
        res = rs_analysis(rng.normal(size=32768), seed=1)
        assert res.hurst == pytest.approx(0.55, abs=0.1)  # small-sample bias up

    def test_rs_detects_high_hurst(self):
        x = fgn_sample(32768, 0.9, seed=14)
        res = rs_analysis(x, seed=2)
        assert res.hurst > 0.75

    def test_constant_block_raises(self):
        with pytest.raises(ValueError):
            rescaled_range(np.ones(10))

    def test_short_series_raises(self):
        with pytest.raises(ValueError):
            rs_analysis(np.ones(10))


class TestPeriodogramHurst:
    def test_recovers_hurst(self):
        x = fgn_sample(32768, 0.8, seed=15)
        res = periodogram_hurst(x)
        assert res.hurst == pytest.approx(0.8, abs=0.1)

    def test_white_noise_half(self):
        rng = np.random.default_rng(16)
        res = periodogram_hurst(rng.normal(size=32768))
        assert res.hurst == pytest.approx(0.5, abs=0.1)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            periodogram_hurst(np.ones(100) + np.arange(100), frequency_fraction=0.0)


class TestHurstPanel:
    def test_panel_on_fgn(self):
        x = fgn_sample(16384, 0.8, seed=17) + 50.0
        panel = hurst_panel(CountProcess(x, 0.1), seed=3)
        assert panel.whittle.hurst == pytest.approx(0.8, abs=0.05)
        assert panel.median_hurst == pytest.approx(0.8, abs=0.12)
        assert panel.consistent_with_fgn
        assert panel.long_range_dependent_looking

    def test_panel_on_poisson_counts(self):
        rng = np.random.default_rng(18)
        panel = hurst_panel(rng.poisson(30, size=16384).astype(float), seed=4)
        assert panel.median_hurst == pytest.approx(0.5, abs=0.1)
        assert not panel.long_range_dependent_looking

    def test_mg_infinity_counts_look_lrd(self):
        """Appendix D: M/G/inf with Pareto(1.5) service is asymptotically
        self-similar with H = 0.75; the panel must see elevated H."""
        model = pareto_mg_infinity(rho=5.0, location=1.0, shape=1.5)
        x = model.simulate(16384, dt=1.0, seed=19, warmup=50000.0)
        panel = hurst_panel(x.astype(float), seed=5)
        assert panel.median_hurst > 0.62

    def test_summary_row(self):
        x = fgn_sample(2048, 0.7, seed=20) + 10
        row = hurst_panel(x).summary_row()
        assert "H_whittle" in row and "fgn_consistent" in row
