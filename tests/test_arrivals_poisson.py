"""Tests for repro.arrivals.poisson."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import (
    exponential_interarrival_times,
    homogeneous_poisson,
    piecewise_poisson,
    poisson_fixed_count,
    thinned_poisson,
)


class TestHomogeneousPoisson:
    def test_sorted_within_window(self):
        t = homogeneous_poisson(5.0, 100.0, seed=1)
        assert np.all(np.diff(t) >= 0)
        assert np.all((t >= 0) & (t < 100.0))

    def test_count_near_expectation(self):
        t = homogeneous_poisson(10.0, 1000.0, seed=2)
        # N ~ Poisson(10000): 5 sigma = 500
        assert abs(t.size - 10000) < 500

    def test_zero_rate(self):
        assert homogeneous_poisson(0.0, 100.0, seed=3).size == 0

    def test_zero_duration(self):
        assert homogeneous_poisson(5.0, 0.0, seed=4).size == 0

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            homogeneous_poisson(-1.0, 10.0)

    def test_interarrivals_exponential_mean(self):
        t = homogeneous_poisson(2.0, 5000.0, seed=5)
        gaps = np.diff(t)
        assert np.mean(gaps) == pytest.approx(0.5, rel=0.05)

    def test_reproducible(self):
        assert np.array_equal(
            homogeneous_poisson(1.0, 50.0, seed=6), homogeneous_poisson(1.0, 50.0, seed=6)
        )


class TestPoissonFixedCount:
    def test_exact_count(self):
        assert poisson_fixed_count(137, 100.0, seed=7).size == 137

    def test_sorted(self):
        t = poisson_fixed_count(50, 10.0, seed=8)
        assert np.all(np.diff(t) >= 0)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            poisson_fixed_count(-1, 10.0)

    def test_uniform_marginal(self):
        t = poisson_fixed_count(20000, 1.0, seed=9)
        assert np.mean(t) == pytest.approx(0.5, abs=0.01)


class TestPiecewisePoisson:
    def test_rate_steps_respected(self):
        # 0 arrivals in silent hours, ~3600 in busy hour
        t = piecewise_poisson([0.0, 1.0, 0.0], interval=3600.0, seed=10)
        assert np.all((t >= 3600.0) & (t < 7200.0))
        assert abs(t.size - 3600) < 300

    def test_empty_rates(self):
        assert piecewise_poisson([], seed=11).size == 0

    def test_total_duration(self):
        t = piecewise_poisson([1.0] * 4, interval=600.0, seed=12)
        assert t.max() < 2400.0

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            piecewise_poisson([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_arrivals_sorted_after_concat(self, rates):
        t = piecewise_poisson(rates, interval=10.0, seed=13)
        assert np.all(np.diff(t) >= 0)


class TestThinnedPoisson:
    def test_matches_homogeneous_when_constant(self):
        t = thinned_poisson(lambda x: np.full_like(x, 2.0), 2.0, 2000.0, seed=14)
        assert abs(t.size - 4000) < 400

    def test_respects_zero_rate_regions(self):
        def rate(x):
            return np.where(x < 50.0, 0.0, 4.0)

        t = thinned_poisson(rate, 4.0, 100.0, seed=15)
        assert np.all(t >= 50.0)

    def test_rate_above_max_raises(self):
        with pytest.raises(ValueError):
            thinned_poisson(lambda x: np.full_like(x, 3.0), 1.0, 100.0, seed=16)


class TestExponentialGaps:
    def test_mean(self):
        g = exponential_interarrival_times(50000, 1.1, seed=17)
        assert np.mean(g) == pytest.approx(1.1, rel=0.03)

    def test_count(self):
        assert exponential_interarrival_times(7, 1.0, seed=18).size == 7

    def test_bad_mean(self):
        with pytest.raises(ValueError):
            exponential_interarrival_times(5, 0.0)
