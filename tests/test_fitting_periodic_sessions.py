"""Tests for model selection, periodic-traffic handling, and the Section III
side experiments (X11 sessions, weather-map preprocessing)."""

import numpy as np
import pytest

from repro.arrivals import homogeneous_poisson, timer_driven_arrivals
from repro.distributions import Exponential, LogExtreme, LogLogistic, Log2Normal, Pareto
from repro.experiments import weathermap, x11_sessions
from repro.stats.fitting import best_fit, compare_fits, ks_distance, log_likelihood
from repro.traces import ConnectionRecord, ConnectionTrace
from repro.traces.periodic import detect_periodic_sources, remove_periodic_traffic


class TestModelSelection:
    def test_exponential_data_picks_exponential_by_aic(self):
        """KS alone cannot separate a Weibull(shape~1) from the exponential
        it nests; AIC's parameter penalty can."""
        s = Exponential(2.0).sample(20000, seed=1)
        assert best_fit(s, criterion="aic").name == "exponential"
        # and by KS the exponential is still in the top two
        names = [r.name for r in compare_fits(s)[:2]]
        assert "exponential" in names

    def test_pareto_data_picks_pareto(self):
        s = Pareto(1.0, 1.3).sample(20000, seed=2)
        assert best_fit(s, ["exponential", "pareto", "log2-normal"]).name == "pareto"

    def test_lognormal_beats_logextreme_on_lognormal_data(self):
        """Section V's adjudication for packet counts."""
        s = Log2Normal(np.log2(100), 2.24).sample(20000, seed=3)
        reports = compare_fits(s, ["log-extreme", "log2-normal"])
        assert reports[0].name == "log2-normal"

    def test_logextreme_beats_lognormal_on_logextreme_data(self):
        """...and for byte counts."""
        s = LogExtreme.paxson_telnet_bytes().sample(20000, seed=4)
        reports = compare_fits(s, ["log-extreme", "log2-normal"])
        assert reports[0].name == "log-extreme"

    def test_loglogistic_recognized(self):
        s = LogLogistic(3.0, 2.0).sample(20000, seed=5)
        reports = compare_fits(s, ["exponential", "log-logistic", "weibull"])
        assert reports[0].name == "log-logistic"

    def test_reports_sorted_by_ks(self):
        s = Exponential(1.0).sample(5000, seed=6)
        reports = compare_fits(s)
        ks = [r.ks_statistic for r in reports]
        assert ks == sorted(ks)

    def test_aic_penalizes_parameters(self):
        s = Exponential(1.0).sample(5000, seed=7)
        rep = compare_fits(s, ["exponential"])[0]
        assert rep.aic == pytest.approx(2 - 2 * rep.log_likelihood)

    def test_ks_distance_zero_for_own_cdf(self):
        d = Exponential(1.0)
        s = np.sort(d.sample(100000, seed=8))
        assert ks_distance(s, d) < 0.01

    def test_log_likelihood_minus_inf_outside_support(self):
        assert log_likelihood(np.array([0.5]), Pareto(1.0, 2.0)) == float("-inf")

    def test_unknown_candidate(self):
        with pytest.raises(KeyError):
            compare_fits(np.ones(100) + np.arange(100), ["cauchy"])

    def test_small_sample_raises(self):
        with pytest.raises(ValueError):
            compare_fits([1.0, 2.0])


def _trace_with_timer(user_rate=20.0, hours=24, batch=1, seed=0):
    rng = np.random.default_rng(seed)
    end = hours * 3600.0
    recs = [
        ConnectionRecord(float(t), 10.0, "FTP",
                         orig_host=int(rng.integers(0, 50)),
                         resp_host=int(rng.integers(50, 100)))
        for t in homogeneous_poisson(user_rate / 3600.0, end, seed=rng)
    ]
    recs += [
        ConnectionRecord(float(t), 10.0, "FTP", orig_host=900, resp_host=901)
        for t in timer_driven_arrivals(1800.0, end, jitter_sd=10.0,
                                       batch_size=batch, batch_gap=1.5,
                                       seed=rng)
    ]
    return ConnectionTrace("timer-demo", recs)


class TestPeriodicDetection:
    def test_detects_plain_timer(self):
        sources = detect_periodic_sources(_trace_with_timer(batch=1))
        assert len(sources) == 1
        assert sources[0].orig_host == 900
        assert sources[0].period == pytest.approx(1800.0, rel=0.05)

    def test_detects_batched_timer(self):
        sources = detect_periodic_sources(_trace_with_timer(batch=4))
        assert len(sources) == 1
        assert sources[0].period == pytest.approx(1800.0, rel=0.05)

    def test_no_false_positive_on_poisson(self):
        rng = np.random.default_rng(3)
        recs = [
            ConnectionRecord(float(t), 10.0, "FTP",
                             orig_host=5, resp_host=6)
            for t in homogeneous_poisson(40.0 / 3600.0, 48 * 3600.0, seed=rng)
        ]
        assert detect_periodic_sources(ConnectionTrace("poisson", recs)) == []

    def test_removal_preserves_other_traffic(self):
        trace = _trace_with_timer(batch=2)
        cleaned, removed = remove_periodic_traffic(trace, "FTP")
        assert len(removed) == 1
        assert len(cleaned) == len(trace) - removed[0].n_connections

    def test_removal_noop_when_nothing_periodic(self):
        rng = np.random.default_rng(4)
        recs = [ConnectionRecord(float(t), 1.0, "FTP", orig_host=1, resp_host=2)
                for t in homogeneous_poisson(0.01, 48 * 3600.0, seed=rng)]
        trace = ConnectionTrace("clean", recs)
        cleaned, removed = remove_periodic_traffic(trace, "FTP")
        assert removed == []
        assert len(cleaned) == len(trace)

    def test_min_connections_guard(self):
        with pytest.raises(ValueError):
            detect_periodic_sources(_trace_with_timer(), min_connections=2)


class TestX11Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return x11_sessions(seed=0)

    def test_conjecture_confirmed(self, result):
        """The paper's conjecture: session arrivals Poisson, connection
        arrivals not."""
        assert result.conjecture_confirmed

    def test_render(self, result):
        assert "X11" in result.render()


class TestWeathermapExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return weathermap(seed=0)

    def test_periodic_job_detected(self, result):
        assert len(result.removed) == 1
        assert result.removed[0].period == pytest.approx(600.0, rel=0.05)

    def test_removal_restores_poisson_verdict(self, result):
        assert not result.with_periodic.poisson_consistent
        assert result.without_periodic.poisson_consistent
        assert result.removal_matters

    def test_render(self, result):
        assert "weather-map" in result.render()
