"""Tests for the TCP Reno substrate (Section VII-C-2 dynamics)."""

import numpy as np
import pytest

from repro.stats import anderson_darling_exponential
from repro.tcp import BottleneckSimulator, RenoSender, TransferSpec


class TestRenoSender:
    def test_initial_state(self):
        s = RenoSender(100)
        assert s.cwnd == 1.0
        assert not s.done
        assert s.can_send()

    def test_slow_start_doubles_per_round(self):
        """cwnd += 1 per ACK below ssthresh => doubling per RTT round."""
        s = RenoSender(1000, initial_ssthresh=64.0)
        # round 1: send 1, ack 1
        seqs = [s.next_segment()]
        for q in seqs:
            s.on_ack(q)
        assert s.cwnd == pytest.approx(2.0)
        # round 2: send 2, ack 2
        seqs = [s.next_segment(), s.next_segment()]
        for q in seqs:
            s.on_ack(q)
        assert s.cwnd == pytest.approx(4.0)

    def test_congestion_avoidance_linear(self):
        s = RenoSender(10000, initial_ssthresh=2.0)
        s.cwnd = 10.0
        for _ in range(10):  # one full window of acks
            q = s.next_segment()
            s.on_ack(q)
        assert s.cwnd == pytest.approx(11.0, abs=0.1)

    def test_loss_halves_once_per_window(self):
        s = RenoSender(1000, initial_ssthresh=100.0)
        s.cwnd = 16.0
        seqs = [s.next_segment() for _ in range(8)]
        s.on_loss(seqs[0])
        assert s.cwnd == pytest.approx(8.0)
        s.on_loss(seqs[1])  # same window: no second halving
        assert s.cwnd == pytest.approx(8.0)

    def test_retransmits_take_priority(self):
        s = RenoSender(100)
        q0 = s.next_segment()
        s.on_loss(q0)
        assert s.next_segment() == q0

    def test_window_cap(self):
        s = RenoSender(10**6, max_window=8.0, initial_ssthresh=1000.0)
        for _ in range(100):
            q = s.next_segment()
            s.on_ack(q)
        assert s.cwnd <= 8.0

    def test_done_requires_all_segments(self):
        s = RenoSender(3)
        for _ in range(3):
            s.on_ack(s.next_segment())
        assert s.done
        assert not s.can_send()

    def test_validation(self):
        with pytest.raises(ValueError):
            RenoSender(0)

    def test_cannot_send_beyond_window(self):
        s = RenoSender(100)
        s.next_segment()  # cwnd=1 -> in_flight 1
        assert not s.can_send()
        with pytest.raises(RuntimeError):
            s.next_segment()


class TestBottleneckSimulator:
    def test_window_limited_throughput(self):
        """No congestion: throughput ~ W / RTT."""
        sim = BottleneckSimulator(rate=1000.0, buffer_packets=100)
        res = sim.run([TransferSpec(0.0, 5000, rtt=0.1, max_window=32)])
        t = res.transfers[0]
        assert t.packets_dropped == 0
        assert t.throughput == pytest.approx(32 / 0.1, rel=0.15)

    def test_bandwidth_limited_utilization(self):
        """Congested: throughput approaches the bottleneck rate."""
        sim = BottleneckSimulator(rate=200.0, buffer_packets=8)
        res = sim.run([TransferSpec(0.0, 5000, rtt=0.1, max_window=64)])
        t = res.transfers[0]
        assert t.packets_dropped > 0
        assert 0.6 * 200 < t.throughput < 200.0

    def test_sawtooth_window(self):
        """Section VII: 'long-term oscillations' from the congestion
        window's growth and halving (Reno's halving bounds the peak/trough
        ratio near 2)."""
        sim = BottleneckSimulator(rate=200.0, buffer_packets=4)
        res = sim.run([TransferSpec(0.0, 5000, rtt=0.3, max_window=128)])
        cw = np.array([c for _, c in res.transfers[0].cwnd_trace])
        assert cw.max() > 1.5 * cw[len(cw) // 2:].min()
        # both increases and decreases occur after the first loss
        diffs = np.diff(cw)
        assert np.any(diffs > 0) and np.any(diffs < 0)

    def test_self_clocking_spacing(self):
        """During busy periods, departures are one service time apart."""
        sim = BottleneckSimulator(rate=100.0, buffer_packets=16)
        res = sim.run([TransferSpec(0.0, 2000, rtt=0.2, max_window=64)])
        gaps = np.diff(res.departure_times)
        busy = gaps[gaps < 0.05]
        assert busy.size > 100
        assert np.median(busy) == pytest.approx(0.01, rel=0.05)

    def test_rtt_unfairness(self):
        """Different connections get different average rates (the paper's
        point against constant-rate M/G/inf modeling)."""
        sim = BottleneckSimulator(rate=500.0, buffer_packets=16)
        res = sim.run([
            TransferSpec(0.0, 8000, rtt=0.05, max_window=64),
            TransferSpec(0.0, 8000, rtt=0.2, max_window=64),
        ])
        short, long_ = res.transfers
        assert short.throughput > 1.5 * long_.throughput

    def test_all_packets_delivered(self):
        sim = BottleneckSimulator(rate=300.0, buffer_packets=10)
        res = sim.run([TransferSpec(0.0, 3000, rtt=0.1, max_window=48)])
        t = res.transfers[0]
        assert t.completion_time is not None
        # every segment departed the bottleneck at least once
        assert len(t.departure_times) >= 3000

    def test_departure_interarrivals_not_exponential(self):
        """Section VI: FTPDATA packet interarrivals are far from
        exponential — self-clocking and queueing make them so."""
        sim = BottleneckSimulator(rate=150.0, buffer_packets=12)
        res = sim.run([TransferSpec(0.0, 4000, rtt=0.15, max_window=64)])
        gaps = np.diff(res.departure_times)
        assert not anderson_darling_exponential(gaps[:2000]).passed

    def test_rate_varies_within_connection(self):
        """Average rate over consecutive windows varies as cwnd varies
        (choose buffer << bandwidth-delay product so halving the window
        actually empties the pipe)."""
        sim = BottleneckSimulator(rate=200.0, buffer_packets=4)
        res = sim.run([TransferSpec(0.0, 6000, rtt=0.3, max_window=128)])
        t = np.asarray(res.transfers[0].departure_times)
        counts, _ = np.histogram(t, bins=np.arange(0.0, t.max(), 2.0))
        mid = counts[2:-2]
        assert mid.max() > 1.4 * max(mid.min(), 1)

    def test_horizon_cuts_simulation(self):
        sim = BottleneckSimulator(rate=100.0, buffer_packets=16)
        res = sim.run([TransferSpec(0.0, 10**6, rtt=0.1)], horizon=10.0)
        assert res.departure_times.max() <= 10.0
        assert res.transfers[0].completion_time is None

    def test_truncated_run_reports_partial_progress(self):
        """Regression: a horizon-truncated transfer used to report
        throughput 0.0 despite delivering packets for the whole window."""
        sim = BottleneckSimulator(rate=100.0, buffer_packets=16)
        res = sim.run([TransferSpec(0.0, 10**6, rtt=0.1)], horizon=10.0)
        t = res.transfers[0]
        assert t.completion_time is None
        assert t.packets_delivered > 0
        assert t.packets_delivered == len(t.departure_times)
        span = max(t.departure_times) - t.spec.start_time
        assert t.throughput == pytest.approx(t.packets_delivered / span)
        # delivered over the observed span tracks the bottleneck rate
        assert t.throughput == pytest.approx(100.0, rel=0.25)

    def test_completed_run_throughput_unchanged(self):
        """The paper-faithful definition still applies to completed
        transfers: all n_packets over start-to-completion."""
        sim = BottleneckSimulator(rate=300.0, buffer_packets=10)
        res = sim.run([TransferSpec(0.0, 500, rtt=0.1, max_window=48)])
        t = res.transfers[0]
        assert t.completion_time is not None
        assert t.packets_delivered >= 500  # retransmissions included
        span = t.completion_time - t.spec.start_time
        assert t.throughput == pytest.approx(500 / span)

    def test_zero_deliveries_zero_throughput(self):
        sim = BottleneckSimulator(rate=100.0, buffer_packets=16)
        res = sim.run([TransferSpec(5.0, 100, rtt=0.1)], horizon=1.0)
        t = res.transfers[0]
        assert t.packets_delivered == 0
        assert t.throughput == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BottleneckSimulator(rate=0.0)
        with pytest.raises(ValueError):
            BottleneckSimulator(rate=1.0, buffer_packets=0)
        with pytest.raises(ValueError):
            BottleneckSimulator(rate=1.0).run([])
        with pytest.raises(ValueError):
            TransferSpec(0.0, 0)


class TestCrossTraffic:
    def test_cross_traffic_departures_reported(self):
        from repro.arrivals import homogeneous_poisson

        sim = BottleneckSimulator(rate=200.0, buffer_packets=10)
        udp = homogeneous_poisson(50.0, 30.0, seed=1)
        res = sim.run([TransferSpec(0.0, 1000, rtt=0.1)], cross_traffic=udp)
        assert res.cross_traffic_times.size > 0
        assert res.cross_traffic_times.size + res.cross_traffic_drops == udp.size

    def test_no_cross_traffic_by_default(self):
        sim = BottleneckSimulator(rate=200.0, buffer_packets=10)
        res = sim.run([TransferSpec(0.0, 500, rtt=0.1)])
        assert res.cross_traffic_times.size == 0
        assert res.cross_traffic_drops == 0
