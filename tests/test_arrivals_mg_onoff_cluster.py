"""Tests for M/G/infinity (Appendices D-E), ON/OFF sources, and the
clustered arrival generators used for the non-Poisson protocols."""

import math

import numpy as np
import pytest

from repro.arrivals import (
    MGInfinity,
    OnOffSource,
    asymptotic_hurst,
    cascade_arrivals,
    compound_poisson_cluster,
    expected_hurst,
    is_long_range_dependent,
    lognormal_mg_infinity,
    multiplex_onoff,
    pareto_autocovariance,
    pareto_mg_infinity,
    timer_driven_arrivals,
)
from repro.distributions import Exponential, Log2Normal, Pareto


class TestMGInfinity:
    def test_stationary_mean_poisson_marginal(self):
        """Appendix D: E[X] = rho * beta * a / (beta - 1) for Pareto service."""
        model = pareto_mg_infinity(rho=2.0, location=1.0, shape=1.5)
        assert model.stationary_mean == pytest.approx(2.0 * 1.5 / 0.5)
        x = model.simulate(20000, dt=1.0, seed=1, warmup=2000.0)
        assert x.mean() == pytest.approx(model.stationary_mean, rel=0.15)

    def test_marginal_variance_equals_mean(self):
        """Poisson marginals: Var[X] ~= E[X]."""
        model = MGInfinity(3.0, Exponential(2.0))
        x = model.simulate(50000, dt=1.0, seed=2)
        assert x.var() == pytest.approx(x.mean(), rel=0.15)

    def test_counts_nonnegative(self):
        model = pareto_mg_infinity(1.0, 1.0, 1.4)
        x = model.simulate(1000, dt=1.0, seed=3, warmup=500.0)
        assert np.all(x >= 0)

    def test_closed_form_matches_numeric_autocovariance(self):
        model = pareto_mg_infinity(rho=1.0, location=1.0, shape=1.6)
        ks = np.array([2.0, 5.0, 20.0])
        closed = pareto_autocovariance(1.0, 1.0, 1.6, ks)
        numeric = model.autocovariance(ks, upper_q=1 - 1e-9)
        assert np.allclose(closed, numeric, rtol=0.05)

    def test_autocovariance_power_law_decay(self):
        """r(k) ~ k^(1-beta): slope on log-log is 1 - beta."""
        ks = np.array([10.0, 100.0, 1000.0])
        r = pareto_autocovariance(1.0, 1.0, 1.5, ks)
        slopes = np.diff(np.log(r)) / np.diff(np.log(ks))
        assert np.allclose(slopes, -0.5, atol=1e-6)

    def test_autocovariance_at_zero_is_mean(self):
        """r(0) = rho * E[service] = Var of the Poisson marginal."""
        r0 = pareto_autocovariance(2.0, 1.0, 1.5, 0.0)
        assert r0 == pytest.approx(2.0 * 1.5 / 0.5)

    def test_simulated_autocovariance_tracks_closed_form(self):
        model = pareto_mg_infinity(rho=5.0, location=1.0, shape=1.5)
        x = model.simulate(200000, dt=1.0, seed=4, warmup=20000.0).astype(float)
        xc = x - x.mean()
        for k in (1, 4):
            emp = float(np.mean(xc[:-k] * xc[k:]))
            theory = pareto_autocovariance(5.0, 1.0, 1.5, float(k))
            assert emp == pytest.approx(theory, rel=0.35)

    def test_pareto_closed_form_requires_finite_mean(self):
        with pytest.raises(ValueError):
            pareto_autocovariance(1.0, 1.0, 0.9, 1.0)


class TestLRDClassification:
    def test_pareto_is_lrd(self):
        assert is_long_range_dependent(Pareto(1.0, 1.5))
        assert is_long_range_dependent(Pareto(1.0, 1.9))

    def test_light_pareto_not_lrd(self):
        assert not is_long_range_dependent(Pareto(1.0, 3.0))

    def test_lognormal_not_lrd(self):
        """Appendix E's result."""
        assert not is_long_range_dependent(Log2Normal(math.log2(100), 2.24))

    def test_exponential_not_lrd_numeric_path(self):
        assert not is_long_range_dependent(Exponential(5.0), k_max=1e4)

    def test_lognormal_model_constructor(self):
        m = lognormal_mg_infinity(1.0, 3.0, 1.0)
        assert isinstance(m.service, Log2Normal)

    def test_asymptotic_hurst(self):
        assert asymptotic_hurst(1.5) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            asymptotic_hurst(2.5)


class TestOnOff:
    def test_intervals_cover_window(self):
        src = OnOffSource.pareto(rate=2.0)
        ivs = src.intervals(1000.0, seed=5)
        for s, e in ivs:
            assert 0.0 <= s <= e <= 1000.0

    def test_counts_bounded_by_rate(self):
        src = OnOffSource.pareto(rate=3.0)
        c = src.counts(100, 10.0, seed=6)
        assert np.all(c <= 3.0 * 10.0 + 1e-9)
        assert np.all(c >= 0)

    def test_multiplex_mean_grows_linearly(self):
        c1 = multiplex_onoff(5, 200, 10.0, seed=7)
        c2 = multiplex_onoff(20, 200, 10.0, seed=8)
        assert c2.mean() > 2.0 * c1.mean()

    def test_expected_hurst(self):
        assert expected_hurst(1.2, 1.6) == pytest.approx(0.9)
        with pytest.raises(ValueError):
            expected_hurst(2.5, 2.5)

    def test_bad_source_count(self):
        with pytest.raises(ValueError):
            multiplex_onoff(0, 10, 1.0)


class TestClusterArrivals:
    def test_compound_cluster_burstier_than_poisson(self):
        """Cluster arrivals have higher count variance than Poisson of the
        same mean — the mechanism behind SMTP/NNTP failing the tests."""
        from repro.utils import bin_counts

        gap = Exponential(0.5)
        size = Pareto(1.0, 1.2)
        t = compound_poisson_cluster(0.05, 50000.0, size, gap, seed=9)
        c = bin_counts(t, width=10.0, start=0.0, end=50000.0)
        # index of dispersion > 1 signals over-dispersion vs Poisson
        assert c.var() / c.mean() > 1.2

    def test_cluster_times_in_window_sorted(self):
        t = compound_poisson_cluster(0.1, 1000.0, Pareto(1.0, 1.5), Exponential(1.0), seed=10)
        assert np.all(np.diff(t) >= 0)
        assert np.all((t >= 0) & (t < 1000.0))

    def test_timer_driven_period(self):
        t = timer_driven_arrivals(60.0, 3600.0, seed=11)
        assert t.size == 60
        assert np.allclose(np.diff(t), 60.0)

    def test_timer_driven_batches(self):
        t = timer_driven_arrivals(100.0, 1000.0, batch_size=3, batch_gap=1.0, seed=12)
        assert t.size == 30

    def test_timer_driven_jitter_perturbs(self):
        t = timer_driven_arrivals(60.0, 3600.0, jitter_sd=5.0, seed=13)
        assert not np.allclose(np.diff(t), 60.0)

    def test_timer_bad_period(self):
        with pytest.raises(ValueError):
            timer_driven_arrivals(0.0, 100.0)

    def test_cascade_spawns_more_than_seeds(self):
        seeds_only = cascade_arrivals(0.1, 10000.0, 0.0, Exponential(1.0), seed=14)
        with_spawn = cascade_arrivals(0.1, 10000.0, 0.7, Exponential(1.0), seed=14)
        assert with_spawn.size > seeds_only.size

    def test_cascade_bad_probability(self):
        with pytest.raises(ValueError):
            cascade_arrivals(0.1, 100.0, 1.0, Exponential(1.0))
