"""Tests for the Appendix C pseudo-self-similar Pareto renewal process."""

import math

import numpy as np
import pytest

from repro.arrivals import (
    burst_lull_summary,
    burst_termination_bounds,
    expected_burst_length,
    lull_length_bounds,
    pareto_renewal_arrivals,
    pareto_renewal_counts,
    steady_state_empty_probability,
)


class TestArrivalGeneration:
    def test_monotone_times(self):
        t = pareto_renewal_arrivals(1000, shape=1.0, seed=1)
        assert np.all(np.diff(t) > 0)

    def test_gaps_respect_location(self):
        t = pareto_renewal_arrivals(500, shape=1.2, location=2.0, seed=2)
        gaps = np.diff(np.concatenate([[0.0], t]))
        assert np.all(gaps >= 2.0)

    def test_zero_count(self):
        assert pareto_renewal_arrivals(0, shape=1.0).size == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            pareto_renewal_arrivals(-1, shape=1.0)


class TestCountProcess:
    def test_shape_and_dtype(self):
        c = pareto_renewal_counts(500, bin_width=10.0, shape=1.0, seed=3)
        assert c.shape == (500,)
        assert c.dtype == np.int64

    def test_counts_nonnegative(self):
        c = pareto_renewal_counts(200, bin_width=100.0, shape=0.9, seed=4)
        assert np.all(c >= 0)

    def test_reproducible(self):
        a = pareto_renewal_counts(100, bin_width=10.0, shape=1.1, seed=5)
        b = pareto_renewal_counts(100, bin_width=10.0, shape=1.1, seed=5)
        assert np.array_equal(a, b)

    def test_matches_direct_binning_for_light_tail(self):
        """For beta = 3 (finite mean 1.5a) counts should average ~b/mean."""
        c = pareto_renewal_counts(1000, bin_width=30.0, shape=3.0, seed=6)
        assert c.mean() == pytest.approx(30.0 / 1.5, rel=0.1)

    def test_zero_bins(self):
        assert pareto_renewal_counts(0, bin_width=1.0, shape=1.0).size == 0


class TestBurstLullSummary:
    def test_simple_runs(self):
        s = burst_lull_summary(np.array([1, 2, 0, 0, 0, 3, 0]))
        assert s.burst_lengths.tolist() == [2, 1]
        assert s.lull_lengths.tolist() == [3, 1]

    def test_all_occupied(self):
        s = burst_lull_summary(np.array([1, 1, 1]))
        assert s.burst_lengths.tolist() == [3]
        assert s.lull_lengths.size == 0

    def test_all_empty(self):
        s = burst_lull_summary(np.array([0, 0]))
        assert s.lull_lengths.tolist() == [2]

    def test_empty_input(self):
        s = burst_lull_summary(np.array([]))
        assert s.mean_burst == 0.0
        assert s.mean_lull == 0.0

    def test_partition_property(self):
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 3, size=500)
        s = burst_lull_summary(counts)
        assert s.burst_lengths.sum() + s.lull_lengths.sum() == 500

    def test_occupied_fraction(self):
        s = burst_lull_summary(np.array([1, 0, 1, 0]))
        assert s.occupied_fraction == pytest.approx(0.5)


class TestAppendixCClosedForms:
    def test_termination_bounds_ordering(self):
        lo, hi = burst_termination_bounds(10.0, 1.0, 1.0)
        assert lo == pytest.approx((1.0 / 20.0) ** 1.0)
        assert hi == pytest.approx((1.0 / 10.0) ** 1.0)
        assert lo < hi

    def test_expected_burst_beta2_linear(self):
        assert expected_burst_length(100.0, 1.0, 2.0) == pytest.approx(100.0)
        assert expected_burst_length(1000.0, 1.0, 2.0) == pytest.approx(1000.0)

    def test_expected_burst_beta1_logarithmic(self):
        b1 = expected_burst_length(1e3, 1.0, 1.0)
        b2 = expected_burst_length(1e7, 1.0, 1.0)
        assert b1 == pytest.approx(math.log(1e3))
        # growing b by 10^4 only grows bursts by a factor ~2.33
        assert b2 / b1 == pytest.approx(7 / 3, rel=0.01)

    def test_expected_burst_beta_half_constant(self):
        assert expected_burst_length(1e3, 1.0, 0.5) == 2.0
        assert expected_burst_length(1e9, 1.0, 0.5) == 2.0

    def test_bin_smaller_than_location(self):
        assert expected_burst_length(0.5, 1.0, 1.0) == 1.0

    def test_lull_bounds_invariant_in_bins(self):
        """Lull lengths in *bins* are b-invariant: bounds scale with b."""
        lo1, hi1 = lull_length_bounds(10.0, 1.0, 1.0)
        lo2, hi2 = lull_length_bounds(1000.0, 1.0, 1.0)
        assert lo1.location == 10.0 and hi1.location == 20.0
        assert lo2.location == 1000.0 and hi2.location == 2000.0
        # normalized by b, identical distributions
        assert lo1.location / 10.0 == lo2.location / 1000.0
        assert lo1.shape == lo2.shape

    def test_steady_state_empty(self):
        assert steady_state_empty_probability(1.0) == 0.0
        assert steady_state_empty_probability(0.5) == 0.0
        assert math.isnan(steady_state_empty_probability(1.5))


class TestVisualSelfSimilarity:
    """The empirical claims behind Figs. 14-15."""

    def test_burst_growth_slow_for_beta1(self):
        """Mean burst length grows only ~logarithmically with bin size."""
        s_small = burst_lull_summary(
            pareto_renewal_counts(1000, bin_width=1e3, shape=1.0, seed=8)
        )
        s_large = burst_lull_summary(
            pareto_renewal_counts(1000, bin_width=1e6, shape=1.0, seed=9)
        )
        ratio = s_large.mean_burst / s_small.mean_burst
        # paper saw 2.6x for 10^3 -> 10^7; 10^3 -> 10^6 must stay modest
        assert ratio < 4.0

    def test_lull_scale_invariance_beta1(self):
        """Mean lull length (in bins) is roughly invariant in b."""
        s_small = burst_lull_summary(
            pareto_renewal_counts(1000, bin_width=1e3, shape=1.0, seed=10)
        )
        s_large = burst_lull_summary(
            pareto_renewal_counts(1000, bin_width=1e6, shape=1.0, seed=11)
        )
        assert s_small.mean_lull > 0 and s_large.mean_lull > 0
        ratio = s_large.mean_lull / s_small.mean_lull
        assert 0.3 < ratio < 3.0

    def test_beta2_smooths_quickly(self):
        """For beta = 2 large bins are almost always occupied."""
        s = burst_lull_summary(
            pareto_renewal_counts(500, bin_width=1e3, shape=2.0, seed=12)
        )
        assert s.occupied_fraction > 0.95
