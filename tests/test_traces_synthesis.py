"""Tests for the synthetic trace suite — the structural claims the rest of
the reproduction depends on."""

import numpy as np
import pytest

from repro.stats import evaluate_arrival_process
from repro.traces import (
    CONNECTION_TRACE_CONFIGS,
    PACKET_TRACE_CONFIGS,
    standard_suite,
    synthesize_connection_trace,
    synthesize_packet_trace,
)


class TestConfigs:
    def test_table1_has_15_traces(self):
        """Table I: BC, UCB, NC, UK, DEC 1-3, LBL 1-8 = 15 datasets
        (15 connection traces + 9 packet traces = the paper's 24)."""
        assert len(CONNECTION_TRACE_CONFIGS) == 15

    def test_table2_has_9_traces(self):
        """Table II: LBL PKT-1..5 + DEC WRL-1..4 = 9 traces."""
        assert len(PACKET_TRACE_CONFIGS) == 9

    def test_infos_complete(self):
        for cfg in CONNECTION_TRACE_CONFIGS.values():
            assert cfg.info.kind == "connection"
            assert cfg.info.paper_duration
        for cfg in PACKET_TRACE_CONFIGS.values():
            assert cfg.info.kind == "packet"


class TestConnectionSynthesis:
    @pytest.fixture(scope="class")
    def lbl1(self):
        return synthesize_connection_trace("LBL-1", seed=1, hours=24)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            synthesize_connection_trace("nope")

    def test_protocol_mix(self, lbl1):
        protos = set(lbl1.protocol_names)
        assert {"TELNET", "FTP", "FTPDATA", "SMTP", "NNTP"} <= protos

    def test_reproducible(self):
        a = synthesize_connection_trace("UK", seed=3, hours=6)
        b = synthesize_connection_trace("UK", seed=3, hours=6)
        assert np.array_equal(a.start_times, b.start_times)

    def test_within_horizon(self, lbl1):
        assert lbl1.start_times.max() < 24 * 3600.0

    def test_telnet_diurnal_pattern(self):
        tr = synthesize_connection_trace("LBL-2", seed=4, hours=48)
        counts = tr.hourly_counts("TELNET")
        assert counts[10] > 2 * counts[3]  # office hours >> pre-dawn

    def test_ftpdata_linked_to_sessions(self, lbl1):
        groups = lbl1.sessions("FTPDATA")
        assert len(groups) > 10

    def test_scale_parameter(self):
        small = synthesize_connection_trace("UK", seed=5, hours=6, scale=0.3)
        big = synthesize_connection_trace("UK", seed=5, hours=6, scale=1.0)
        assert len(small) < len(big)


class TestStructuralFidelity:
    """The generated traces must reproduce Section III's dichotomy."""

    @pytest.fixture(scope="class")
    def trace(self):
        return synthesize_connection_trace("LBL-3", seed=7, hours=48)

    def test_telnet_poisson_hourly(self, trace):
        res = evaluate_arrival_process(
            trace.arrival_times("TELNET"), 3600.0, start=0.0, end=48 * 3600.0
        )
        assert res.poisson_consistent

    def test_ftp_sessions_poisson_hourly(self, trace):
        res = evaluate_arrival_process(
            trace.arrival_times("FTP"), 3600.0, start=0.0, end=48 * 3600.0
        )
        assert res.poisson_consistent

    def test_ftpdata_not_poisson(self, trace):
        res = evaluate_arrival_process(
            trace.arrival_times("FTPDATA"), 3600.0, start=0.0, end=48 * 3600.0
        )
        assert not res.poisson_consistent

    def test_nntp_not_poisson(self, trace):
        res = evaluate_arrival_process(
            trace.arrival_times("NNTP"), 3600.0, start=0.0, end=48 * 3600.0
        )
        assert not res.poisson_consistent

    def test_smtp_not_poisson(self, trace):
        res = evaluate_arrival_process(
            trace.arrival_times("SMTP"), 3600.0, start=0.0, end=48 * 3600.0
        )
        assert not res.poisson_consistent


class TestPacketSynthesis:
    @pytest.fixture(scope="class")
    def pkt(self):
        return synthesize_packet_trace("LBL PKT-2", seed=8, hours=0.5)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            synthesize_packet_trace("nope")

    def test_contains_telnet_and_ftpdata(self, pkt):
        assert pkt.select("TELNET").sum() > 1000
        assert pkt.select("FTPDATA").sum() > 100

    def test_sorted_within_horizon(self, pkt):
        assert np.all(np.diff(pkt.timestamps) >= 0)
        assert pkt.timestamps.max() < 1800.0

    def test_all_trace_includes_non_tcp(self):
        pkt = synthesize_packet_trace("LBL PKT-4", seed=9, hours=0.25)
        assert pkt.select("OTHER").sum() > 0

    def test_tcp_only_trace_excludes_non_tcp(self, pkt):
        assert pkt.select("OTHER").sum() == 0

    def test_telnet_burstier_than_poisson(self, pkt):
        cp = pkt.count_process(1.0, protocol="TELNET", end=1800.0)
        assert cp.index_of_dispersion > 1.5


class TestSuiteHelpers:
    def test_standard_suite_subset(self):
        suite = standard_suite(seed=10, names=["UK", "NC"])
        assert set(suite) == {"UK", "NC"}
        assert all(len(tr) > 0 for tr in suite.values())

    def test_suite_independent_seeds(self):
        suite = standard_suite(seed=11, names=["DEC-1", "DEC-2"])
        a, b = suite["DEC-1"], suite["DEC-2"]
        assert not np.array_equal(
            a.arrival_times("TELNET")[:10], b.arrival_times("TELNET")[:10]
        )


class TestFirewallProxy:
    def test_wrl_telnet_fewer_heavier_connections(self):
        """Section II: DEC WRL TELNET 'is dominated by a single,
        heavily-loaded machine' — fewer but larger connections."""
        lbl = synthesize_packet_trace("LBL PKT-1", seed=21, hours=1.0)
        wrl = synthesize_packet_trace("DEC WRL-1", seed=21, hours=1.0)
        lbl_conns = lbl.connections("TELNET")
        wrl_conns = wrl.connections("TELNET")
        assert len(wrl_conns) < len(lbl_conns)
        lbl_mean = np.mean([t.size for t in lbl_conns.values()])
        wrl_mean = np.mean([t.size for t in wrl_conns.values()])
        assert wrl_mean > lbl_mean
