"""Tests for the per-scale Whittle/goodness-of-fit analysis (Section VII-C's
'consistent with self-similarity on scales of tens of seconds or more')."""

import numpy as np
import pytest

from repro.core import FullTelModel
from repro.selfsim import CountProcess, fgn_sample, hurst_by_scale


class TestHurstByScale:
    def test_fgn_consistent_at_every_scale(self):
        """Exact fGn stays fGn under aggregation (self-similarity!): H is
        recovered at every scale, and the goodness-of-fit accepts at most
        scales (a 5%-level test on correlated aggregations of one sample
        path occasionally flags a marginal scale)."""
        x = fgn_sample(65536, 0.8, seed=5) + 100.0
        rows = hurst_by_scale(CountProcess(x, 0.1), levels=(1, 4, 16, 64))
        assert len(rows) == 4
        for row in rows:
            assert row["hurst"] == pytest.approx(0.8, abs=0.1)
        assert sum(r["fgn_consistent"] for r in rows) >= 2

    def test_scales_reported_in_seconds(self):
        x = fgn_sample(4096, 0.7, seed=2) + 10.0
        rows = hurst_by_scale(CountProcess(x, 0.5), levels=(1, 4))
        assert rows[0]["scale_seconds"] == pytest.approx(0.5)
        assert rows[1]["scale_seconds"] == pytest.approx(2.0)

    def test_short_levels_dropped(self):
        x = fgn_sample(1024, 0.7, seed=3) + 10.0
        rows = hurst_by_scale(CountProcess(x, 1.0), levels=(1, 2, 512))
        assert len(rows) == 2  # the 512-level leaves < 128 bins

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            hurst_by_scale(CountProcess(np.ones(64) + np.arange(64), 1.0),
                           levels=(64,))

    def test_telnet_traffic_gains_consistency_with_aggregation(self):
        """The paper's TELNET finding: fGn fits 'on scales of tens of
        seconds or more' — packet-scale granularity washes out under
        aggregation while H stays high."""
        cp = FullTelModel(400.0).count_process(7200.0, bin_width=0.1, seed=4,
                                               trim_warmup=1800.0)
        rows = hurst_by_scale(cp, levels=(1, 10, 100))
        assert all(row["hurst"] > 0.6 for row in rows)


class TestTelnetScalesExperiment:
    def test_paper_shape(self):
        from repro.experiments import telnet_scales

        r = telnet_scales(seed=0)
        assert r.hurst_elevated_everywhere
        assert r.coarse_scales_fgn_consistent
        assert "scale" in r.render()
