"""Tests for the always-on monitor (repro.monitor).

Covers the four layers plus the closed loop:

* change-point detectors — CUSUM catches mean steps, Page–Hinkley
  catches ramps, both re-arm after alarms and report typed
  :class:`RegimeShiftAlarm`s with sane latencies;
* online estimators — the windowed Hurst matches the batch
  variance-time fit on the identical window of raw times, the tail fit
  degrades instead of erroring, and detrending separates drift from
  genuine LRD;
* scenario streams — rates, validation, and the batch iterator;
* the service — snapshot cadence, verdict lifecycle, O(window) memory,
  observer/tap wiring, file mode, and the LRD-vs-drift discrimination
  demo: a Hurst step 0.5→0.85 alarms and converges to the batch H while
  the Markov-modulated fake classifies as nonstationary.
"""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.monitor import (
    CusumDetector,
    MonitorConfig,
    MonitorService,
    OnlineHurst,
    OnlinePoissonCheck,
    OnlineTail,
    PageHinkleyDetector,
    SlidingCountLadder,
    assess_drift,
    detrended_hurst,
    diurnal_ramp_stream,
    hurst_step_stream,
    iter_batches,
    markov_onoff_stream,
    pareto_stream,
    poisson_stream,
)
from repro.monitor.windows import DecayedTopK
from repro.selfsim.counts import CountProcess
from repro.selfsim.variance_time import hurst_from_variance_time
from repro.stream.sketches import TopK
from repro.traces.io import write_packet_trace
from repro.traces.trace import PacketTrace


def _test_config(window: float = 60.0, **overrides) -> MonitorConfig:
    base = dict(window=window, bin_width=0.05, snapshot_every=2.0,
                rate_tick=0.5, rate_warmup=30, hurst_warmup=8)
    base.update(overrides)
    return MonitorConfig(**base)


def _drive(times, config, batch_seconds: float = 1.0):
    service = MonitorService(config)
    for batch in iter_batches(times, batch_seconds):
        service.observe(batch)
    return service, service.finalize()


# ----------------------------------------------------------------------
# change-point detectors
# ----------------------------------------------------------------------
class TestCusum:
    def test_detects_upward_mean_step(self):
        rng = np.random.default_rng(1)
        det = CusumDetector(threshold=8.0, drift=0.5, warmup=20,
                            series="rate")
        alarms = []
        for i in range(60):
            x = 10.0 + rng.normal(0, 1.0)
            a = det.update(x, time=float(i))
            assert a is None, "no alarm expected on the reference regime"
        for i in range(60, 120):
            x = 14.0 + rng.normal(0, 1.0)
            a = det.update(x, time=float(i))
            if a is not None:
                alarms.append(a)
                break
        assert alarms, "a 4-sigma step must alarm"
        alarm = alarms[0]
        assert alarm.detector == "cusum"
        assert alarm.series == "rate"
        assert alarm.direction == "up"
        assert alarm.statistic > alarm.threshold == 8.0
        assert alarm.reference_mean == pytest.approx(10.0, abs=1.0)
        assert 1 <= alarm.detection_latency <= alarm.index + 1
        assert alarm.time >= 60.0

    def test_detects_downward_step(self):
        rng = np.random.default_rng(6)
        det = CusumDetector(threshold=5.0, drift=0.5, warmup=20)
        alarm = None
        for i in range(50):
            det.update(10.0 + rng.normal(0, 1.0), time=float(i))
        for i in range(50, 100):
            alarm = det.update(5.0 + rng.normal(0, 1.0), time=float(i))
            if alarm is not None:
                break
        assert alarm is not None and alarm.direction == "down"

    def test_stationary_series_stays_quiet(self):
        rng = np.random.default_rng(2)
        det = CusumDetector(threshold=6.0, drift=0.5, warmup=20)
        for i in range(300):
            assert det.update(rng.normal(0, 1.0), time=float(i)) is None

    def test_rearms_and_catches_second_step(self):
        rng = np.random.default_rng(3)
        det = CusumDetector(threshold=5.0, drift=0.5, warmup=15)
        levels = [0.0] * 40 + [5.0] * 60 + [12.0] * 60
        alarms = [a for i, mu in enumerate(levels)
                  if (a := det.update(mu + rng.normal(0, 1.0),
                                      time=float(i))) is not None]
        assert len(alarms) >= 2
        assert det.n_alarms == len(alarms)
        # Re-estimating its reference after an alarm, but it has warmed.
        assert det.ever_warmed
        # Right after an alarm the detector is re-warming.
        step_alarm = alarms[0]
        assert step_alarm.index < 100

    def test_constant_warmup_does_not_divide_by_zero(self):
        det = CusumDetector(threshold=5.0, warmup=5)
        for i in range(5):
            det.update(3.0, time=float(i))
        assert det.warmed_up
        assert det.ref_std > 0.0
        # A clear jump off the flat reference still alarms eventually.
        alarm = None
        for i in range(5, 10):
            alarm = alarm or det.update(4.0, time=float(i))
        assert alarm is not None

    def test_validation(self):
        with pytest.raises(ValueError, match="warmup"):
            CusumDetector(warmup=1)
        with pytest.raises(ValueError):
            CusumDetector(threshold=0.0)
        with pytest.raises(ValueError, match="drift"):
            CusumDetector(drift=-0.1)


class TestPageHinkley:
    def test_detects_slow_ramp(self):
        rng = np.random.default_rng(4)
        det = PageHinkleyDetector(delta=0.25, threshold=8.0, warmup=20,
                                  series="rate")
        alarm = None
        for i in range(40):
            det.update(10.0 + rng.normal(0, 1.0), time=float(i))
        for i in range(200):
            # +0.05 sigma per step: far too slow for a step detector's
            # single-sample statistic, exactly PH's target regime.
            alarm = det.update(10.0 + 0.05 * i + rng.normal(0, 1.0),
                               time=float(40 + i))
            if alarm is not None:
                break
        assert alarm is not None
        assert alarm.detector == "page-hinkley"
        assert alarm.direction == "up"
        assert alarm.detection_latency >= 1

    def test_stationary_series_stays_quiet(self):
        rng = np.random.default_rng(5)
        det = PageHinkleyDetector(delta=0.5, threshold=20.0, warmup=20)
        for i in range(400):
            assert det.update(rng.normal(0, 1.0), time=float(i)) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="delta"):
            PageHinkleyDetector(delta=-0.1)
        with pytest.raises(ValueError):
            PageHinkleyDetector(threshold=0.0)


# ----------------------------------------------------------------------
# online estimators
# ----------------------------------------------------------------------
class TestOnlineHurst:
    def test_returns_none_until_enough_bins_and_events(self):
        ladder = SlidingCountLadder(0.1, window=math.inf)
        est = OnlineHurst(ladder, min_level=10)
        assert est.estimate() is None
        ladder.update(np.linspace(0.0, 5.0, 50))
        assert est.estimate() is None  # 50 bins < 500

    def test_matches_batch_variance_time_on_same_window(self):
        times = poisson_stream(120.0, 60.0, seed=7)
        ladder = SlidingCountLadder(0.05, window=80.0)
        for batch in iter_batches(times, 1.0):
            ladder.update(batch)
        est = OnlineHurst(ladder, min_level=10).estimate()
        assert est is not None
        lo, hi = est.window_start, est.window_end
        window_times = times[(times >= lo) & (times < hi)]
        batch_h = hurst_from_variance_time(
            CountProcess.from_times(window_times, 0.05, start=lo),
            min_level=10,
        )
        assert est.hurst == pytest.approx(batch_h, abs=1e-9)
        assert est.hurst == pytest.approx(0.5, abs=0.15)
        assert est.n_bins <= ladder.window_bins


class TestOnlineTail:
    def test_matches_batch_topk_at_zero_decay(self):
        rng = np.random.default_rng(8)
        gaps = rng.pareto(1.3, 5000) + 0.01
        decayed = DecayedTopK(4096, decay=0.0)
        decayed.update(gaps, np.arange(gaps.size, dtype=float))
        batch = TopK(4096)
        batch.update(gaps)
        est = OnlineTail(decayed, tail_fraction=0.05).estimate()
        assert est is not None and not est.degraded
        assert (est.location, est.shape, est.k) == batch.tail_fit(0.05)
        assert est.shape == pytest.approx(1.3, abs=0.3)

    def test_degrades_when_reservoir_too_small(self):
        rng = np.random.default_rng(9)
        decayed = DecayedTopK(32, decay=0.0)
        decayed.update(rng.pareto(1.3, 5000) + 0.01,
                       np.arange(5000, dtype=float))
        est = OnlineTail(decayed, tail_fraction=0.25).estimate()
        assert est is not None
        assert est.degraded
        assert est.fraction < est.requested_fraction == 0.25
        assert est.k <= 32

    def test_none_before_min_samples(self):
        decayed = DecayedTopK(64)
        decayed.update([1.0, 2.0], [0.0, 1.0])
        assert OnlineTail(decayed, min_samples=100).estimate() is None


class TestOnlinePoissonCheck:
    def test_exponential_gaps_pass(self):
        times = poisson_stream(60.0, 40.0, seed=10)
        check = OnlinePoissonCheck(window=60.0)
        check.update(times)
        result = check.check()
        assert result is not None and result.passed

    def test_none_until_min_samples(self):
        check = OnlinePoissonCheck(min_samples=30)
        check.update(np.linspace(0, 1, 10))
        assert check.check() is None

    def test_memory_bounded(self):
        check = OnlinePoissonCheck(max_samples=256)
        for k in range(20):
            check.update(np.linspace(k * 10.0, k * 10.0 + 9.0, 1000))
        assert len(check._times) <= 256
        assert check.nbytes == 8 * 256


class TestDriftDiscrimination:
    def test_detrending_collapses_ramp_but_not_pareto(self):
        # A diurnal load ramp: raw VT slope says "LRD", detrending the
        # block means says "nothing here".
        ramp_times = diurnal_ramp_stream(400.0, 50.0, seed=30)
        ramp = CountProcess.from_times(ramp_times, 0.05)
        raw_ramp = hurst_from_variance_time(ramp, min_level=10)
        det_ramp = detrended_hurst(ramp, n_blocks=8, min_level=10)
        assert det_ramp is not None
        assert raw_ramp > 0.65
        assert raw_ramp - det_ramp > 0.15
        # Genuine pseudo-self-similar counts survive detrending.
        times = pareto_stream(400.0, 50.0, seed=11)
        proc = CountProcess.from_times(times, 0.05)
        raw_p = hurst_from_variance_time(proc, min_level=10)
        det_p = detrended_hurst(proc, n_blocks=8, min_level=10)
        assert det_p is not None
        assert raw_p > 0.7
        assert raw_p - det_p < 0.15

    def test_assess_drift_reasons(self):
        times = pareto_stream(400.0, 50.0, seed=12)
        proc = CountProcess.from_times(times, 0.05)
        raw = hurst_from_variance_time(proc, min_level=10)
        quiet = assess_drift(proc, raw, rate_alarms_in_window=0)
        assert not quiet.drifting
        assert "stationary" in quiet.reason
        alarmed = assess_drift(proc, raw, rate_alarms_in_window=3,
                               alarm_limit=2)
        assert alarmed.drifting
        assert "rate alarms" in alarmed.reason
        idle = assess_drift(proc, raw, rate_alarms_in_window=0,
                            idle_excess=0.5, idle_limit=0.35)
        assert idle.drifting
        assert "on/off" in idle.reason

    def test_detrended_hurst_needs_enough_bins(self):
        assert detrended_hurst(CountProcess(np.ones(50), 0.1)) is None


# ----------------------------------------------------------------------
# scenario streams
# ----------------------------------------------------------------------
class TestScenarios:
    def test_pareto_stream_hits_mean_rate(self):
        times = pareto_stream(500.0, 20.0, seed=13)
        assert times.size == pytest.approx(10_000, rel=0.25)
        assert np.all(np.diff(times) > 0)
        assert times[0] >= 0.0 and times[-1] < 500.0

    def test_pareto_stream_validation(self):
        with pytest.raises(ValueError, match="shape"):
            pareto_stream(10.0, 5.0, shape=1.0)

    def test_hurst_step_validation(self):
        with pytest.raises(ValueError, match="t_step"):
            hurst_step_stream(10.0, 5.0, t_step=10.0)

    def test_markov_onoff_has_silent_stretches(self):
        times = markov_onoff_stream(300.0, 100.0, mean_on=5.0,
                                    mean_off=15.0, seed=14)
        counts = CountProcess.from_times(times, 1.0).counts
        idle = np.mean(counts == 0)
        # OFF ~75% of the time: far more empty seconds than Poisson at
        # the same mean rate (~25 events/s -> essentially never empty).
        assert idle > 0.3

    def test_iter_batches_partitions_in_order(self):
        times = poisson_stream(30.0, 20.0, seed=15)
        batches = list(iter_batches(times, 1.0))
        assert all(b.size for b in batches)
        assert np.array_equal(np.concatenate(batches), times)


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class TestMonitorService:
    def test_snapshot_cadence_and_warmup(self):
        times = poisson_stream(60.0, 50.0, seed=16)
        service, report = _drive(times, _test_config(30.0))
        assert report.n_events == times.size
        # ~2s cadence over 60s of stream.
        assert 20 <= len(report.snapshots) <= 35
        assert report.snapshots[0].verdict == "warming-up"
        assert report.duration == pytest.approx(times[-1] - times[0])
        for a, b in zip(report.snapshots, report.snapshots[1:]):
            assert b.time > a.time

    def test_empty_and_unstarted_service(self):
        service = MonitorService(_test_config())
        assert service.observe(np.empty(0)) == []
        report = service.finalize()
        assert report.n_events == 0
        assert report.snapshots == ()
        assert report.final_verdict == "warming-up"
        assert report.events_per_s == 0.0

    def test_memory_stays_o_window(self):
        config = _test_config(20.0)
        service = MonitorService(config)
        times = poisson_stream(400.0, 50.0, seed=17)
        checkpoints = []
        for batch in iter_batches(times, 1.0):
            service.observe(batch)
            checkpoints.append(service.memory_bytes)
        # After the window and the capacity-bounded reservoirs fill
        # (well before half the stream) memory must plateau: the final
        # reading is no larger than the halfway high-water mark, though
        # twice the events flowed through.
        settle = max(checkpoints[: len(checkpoints) // 2])
        assert checkpoints[-1] <= settle
        assert checkpoints[-1] < 2_000_000

    def test_pareto_stream_classifies_self_similar(self):
        times = pareto_stream(300.0, 50.0, seed=18)
        _, report = _drive(times, _test_config(60.0))
        assert report.modal_verdict() == "self-similar"
        hs = [s.hurst.hurst for s in report.snapshots if s.hurst]
        assert np.median(hs[-5:]) > 0.65

    def test_markov_onoff_classifies_nonstationary(self):
        times = markov_onoff_stream(300.0, 200.0, mean_on=5.0,
                                    mean_off=15.0, seed=19)
        _, report = _drive(times, _test_config(60.0))
        assert report.modal_verdict() == "nonstationary"
        counts = report.verdict_counts()
        assert counts["self-similar"] <= counts["nonstationary"]

    def test_hurst_step_alarm_and_online_matches_batch(self):
        """The acceptance demo: a 0.5→0.85 dependence step (no rate
        change) must raise a hurst-series alarm, and the online H must
        land within ±0.05 of the batch variance-time fit computed on the
        identical window of raw times."""
        step_time = 240.0
        times = hurst_step_stream(480.0, 50.0, step_time, seed=20)
        service, report = _drive(times, _test_config(60.0))
        step_alarms = [a for a in report.alarms
                       if a.series == "hurst" and a.time >= step_time]
        assert step_alarms, "the dependence step must alarm"
        assert step_alarms[0].detector == "cusum"
        last = next(s for s in reversed(report.snapshots)
                    if s.hurst is not None)
        lo, hi = last.hurst.window_start, last.hurst.window_end
        window_times = times[(times >= lo) & (times < hi)]
        batch_h = hurst_from_variance_time(
            CountProcess.from_times(window_times, 0.05, start=lo),
            min_level=10,
        )
        assert last.hurst.hurst == pytest.approx(batch_h, abs=0.05)
        assert last.hurst.hurst > 0.65
        # Post-step regime settles on self-similar.
        assert report.modal_verdict(after=step_time + 60.0) == "self-similar"

    def test_tap_reads_batch_attributes(self):
        service = MonitorService(_test_config())
        times = np.sort(np.random.default_rng(21).uniform(0, 5, 200))
        service.tap(SimpleNamespace(timestamps=times,
                                    sizes=np.full(200, 512.0)))
        assert service.n_events == 200
        service.tap(SimpleNamespace(timestamps=times + 5.0, sizes=None))
        assert service.n_events == 400

    def test_attach_registers_observer(self):
        calls = []
        collector = SimpleNamespace(set_observer=calls.append)
        service = MonitorService(_test_config())
        service.attach(collector)
        assert calls == [service.tap]

    def test_run_file_consumes_packet_trace(self, tmp_path):
        times = poisson_stream(30.0, 40.0, seed=22)
        trace = PacketTrace.from_arrays("mon", timestamps=times)
        path = tmp_path / "mon.pkt"
        write_packet_trace(trace, path)
        service = MonitorService(_test_config(20.0))
        report = service.run_file(path)
        assert report.n_events == times.size
        assert report.snapshots

    def test_finalize_flushes_tail_snapshot(self):
        config = _test_config(30.0)
        service = MonitorService(config)
        times = poisson_stream(5.0, 50.0, seed=23)
        # First batch crosses the 2s boundary and snapshots at its last
        # event; the straggler batch stays inside the next interval.
        service.observe(times)
        straggler = times[-1] + np.array([0.3, 0.6])
        service.observe(straggler)
        n_before = len(service.snapshots)
        assert service.snapshots[-1].time < straggler[-1]
        report = service.finalize()
        assert len(report.snapshots) == n_before + 1
        assert report.snapshots[-1].time == pytest.approx(straggler[-1])

    def test_report_payload_and_render(self):
        times = pareto_stream(120.0, 50.0, seed=24)
        _, report = _drive(times, _test_config(40.0))
        payload = report.payload()
        assert payload["n_events"] == report.n_events
        assert payload["final_verdict"] == report.final_verdict
        assert len(payload["snapshots"]) == len(report.snapshots)
        assert set(payload["verdict_counts"]) == {
            "warming-up", "nonstationary", "self-similar", "poisson-like",
            "indeterminate",
        }
        text = report.render()
        assert "monitor report" in text
        assert "final verdict" in text
        bench = report.bench_payload()
        assert bench["events_per_s"] > 0
        assert "snapshots" not in bench

    def test_snapshot_payload_roundtrips_fields(self):
        times = pareto_stream(120.0, 50.0, seed=25)
        _, report = _drive(times, _test_config(40.0))
        snap = report.snapshots[-1]
        payload = snap.payload()
        assert payload["time"] == snap.time
        assert payload["verdict"] == snap.verdict
        assert payload["window"] == [snap.window_start, snap.window_end]
        if snap.hurst is not None:
            assert payload["hurst"]["hurst"] == snap.hurst.hurst

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MonitorService(MonitorConfig(snapshot_every=0.0))
        with pytest.raises(ValueError):
            MonitorService(MonitorConfig(rate_tick=-1.0))

    def test_effective_decay_derivation(self):
        assert MonitorConfig(window=100.0).effective_decay() == (
            pytest.approx(math.log(2.0) / 50.0))
        assert MonitorConfig(window=math.inf).effective_decay() == 0.0
        assert MonitorConfig(decay=0.3).effective_decay() == 0.3
