"""Tests for Tables I/II and Figs. 1-4 experiment modules."""

import numpy as np
import pytest

from repro.experiments import fig01, fig02, fig03, fig04, table1, table2


class TestTables:
    def test_table1_rows_and_render(self):
        r = table1(seed=0, names=["UK", "BC"], hours=6)
        assert len(r.rows) == 2
        assert r.rows[0]["dataset"] == "UK"
        assert r.rows[0]["synth_conns"] > 0
        assert "Table I" in r.render()

    def test_table2_rows_and_render(self):
        r = table2(seed=0, names=["LBL PKT-1"], hours=0.25)
        assert len(r.rows) == 1
        row = r.rows[0]
        assert row["telnet_pkts"] > 0
        assert row["ftpdata_pkts"] >= 0
        assert "Table II" in r.render()

    def test_table2_flags_all_link_level(self):
        r = table2(seed=1, names=["LBL PKT-4"], hours=0.25)
        assert r.rows[0]["all_link_level"] is True


class TestFig01:
    @pytest.fixture(scope="class")
    def result(self):
        return fig01(seed=0, traces=("LBL-1", "LBL-2"), hours=48)

    def test_fractions_normalized(self, result):
        for proto, f in result.fractions.items():
            assert f.sum() == pytest.approx(1.0, abs=0.01)

    def test_telnet_lunch_dip(self, result):
        assert result.telnet_lunch_dip

    def test_ftp_evening_renewal(self, result):
        """FTP's evening share exceeds TELNET's (Fig. 1 narrative)."""
        assert result.ftp_evening_share > 1.2

    def test_nntp_flattest(self, result):
        nntp_flat = result.nntp_flatness
        telnet = result.fractions["TELNET"]
        telnet_flat = telnet.max() / telnet.min()
        assert nntp_flat < telnet_flat

    def test_smtp_morning_bias_west(self, result):
        assert result.smtp_morning_bias

    def test_render_contains_all_protocols(self, result):
        text = result.render()
        for proto in ("TELNET", "FTP", "NNTP", "SMTP"):
            assert proto in text


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02(seed=4, traces=("LBL-1", "LBL-2"), hours=48)

    def test_telnet_poisson_both_scales(self, result):
        for interval in (3600.0, 600.0):
            assert result.consistency_rate("TELNET", interval) >= 0.5

    def test_ftp_sessions_poisson(self, result):
        assert result.consistency_rate("FTP", 3600.0) >= 0.5

    def test_ftpdata_never_poisson(self, result):
        assert result.consistency_rate("FTPDATA", 3600.0) == 0.0
        assert result.consistency_rate("FTPDATA", 600.0) == 0.0

    def test_nntp_never_poisson(self, result):
        assert result.consistency_rate("NNTP", 3600.0) == 0.0

    def test_smtp_not_poisson_hourly(self, result):
        assert result.consistency_rate("SMTP", 3600.0) == 0.0

    def test_bursts_closer_to_poisson_than_raw_ftpdata(self, result):
        """Section III: coalescing into bursts 'improves the 10 min Poisson
        fit somewhat'."""
        burst_cells = [c for c in result.cells
                       if c.protocol == "FTPDATA-BURSTS" and c.interval == 600.0]
        raw_cells = [c for c in result.cells
                     if c.protocol == "FTPDATA" and c.interval == 600.0]
        burst_rate = np.mean([c.result.exponential_pass_rate for c in burst_cells])
        raw_rate = np.mean([c.result.exponential_pass_rate for c in raw_cells])
        assert burst_rate > raw_rate

    def test_smtp_positive_correlation_tendency(self, result):
        smtp = [c for c in result.cells if c.protocol == "SMTP"]
        labels = [c.result.correlation_label for c in smtp]
        assert "+" in labels and "-" not in labels

    def test_render(self, result):
        assert "Fig. 2" in result.render()


class TestFig03:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03(seed=1, duration=7200.0)

    def test_cdfs_monotone(self, result):
        for curve in (result.tcplib_cdf, result.trace_cdf,
                      result.exp_geometric_cdf, result.exp_arithmetic_cdf):
            assert np.all(np.diff(curve) >= -1e-12)

    def test_tcplib_tracks_trace_above_100ms(self, result):
        """Paper: 'Above 0.1 s, the agreement is quite good'."""
        assert result.agreement_above_100ms < 0.08

    def test_exponential_underestimates_tail(self, result):
        assert result.exp_underestimates_tail

    def test_trace_moments_plausible(self, result):
        assert 0.7 < result.trace_mean < 1.6
        assert 0.1 < result.trace_geometric_mean < 0.45

    def test_render(self, result):
        assert "Fig. 3" in result.render()


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04(seed=2)

    def test_packet_counts_near_paper(self, result):
        """Paper: 1,926 Tcplib vs 2,204 exponential arrivals in 2000 s."""
        assert 1200 < result.n_tcplib < 2600
        assert 1500 < result.n_exp < 2600

    def test_tcplib_more_clustered(self, result):
        assert result.clustering_ratio > 1.5

    def test_multiplexed_means_match(self, result):
        """Paper: both aggregate means ~92 per 1 s bin."""
        assert result.mux_mean_tcplib == pytest.approx(result.mux_mean_exp,
                                                       rel=0.1)

    def test_multiplexed_variance_ratio_near_paper(self, result):
        """Paper: 240 / 97 ~= 2.5."""
        assert 1.6 < result.variance_ratio < 4.5

    def test_render(self, result):
        assert "Fig. 4" in result.render()
