"""Tests for Figs. 5-11 experiment modules."""

import numpy as np
import pytest

from repro.experiments import fig05, fig06, fig07, fig08, fig09, fig10, fig11


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05(seed=7, duration=7200.0)

    def test_four_curves(self, result):
        assert set(result.curves) == {"TRACE", "TCPLIB", "EXP", "VAR-EXP"}

    def test_tcplib_tracks_trace(self, result):
        """Fig. 5: 'the variance of the TCPLIB scheme agrees closely with
        the trace data'."""
        v = result.variance_at(50)
        assert v["TCPLIB"] == pytest.approx(v["TRACE"], rel=0.35)

    def test_exp_schemes_lose_variance(self, result):
        """'both EXP and VAR-EXP exhibit far less variance' over mid scales."""
        for level in (10, 50, 200):
            v = result.variance_at(level)
            assert v["EXP"] < v["TRACE"]
            assert v["VAR-EXP"] < v["TRACE"]

    def test_trace_slope_shallower_than_poisson(self, result):
        assert result.slopes(max_level=1000)["TRACE"] > -0.8

    def test_curves_converge_at_large_m(self, result):
        """'At very large time scales we again get agreement' (the coarse
        bins lump each connection into a point)."""
        top = result.variance_at(int(result.levels[-1]))
        assert top["EXP"] == pytest.approx(top["TRACE"], rel=0.8)

    def test_render(self, result):
        assert "Fig. 5" in result.render()


class TestFig06:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06(seed=7, duration=7200.0)

    def test_means_match(self, result):
        """Paper: 59 vs 57 packets per 5 s."""
        assert result.trace_mean == pytest.approx(result.exp_mean, rel=0.1)

    def test_trace_variance_larger(self, result):
        """Paper: 672 vs 260."""
        assert result.variance_ratio > 1.25

    def test_series_lengths_match(self, result):
        assert result.trace_series.size == result.exp_series.size

    def test_render(self, result):
        assert "Fig. 6" in result.render()


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07(seed=4, n_replicates=3)

    def test_replicate_count(self, result):
        assert len(result.model_curves) == 3

    def test_model_agrees_with_trace(self, result):
        """Paper: 'In general the agreement is quite good'."""
        assert result.max_log_gap(max_level=500) < 0.45

    def test_shared_levels(self, result):
        for c in result.model_curves:
            assert np.array_equal(c.levels, result.levels)

    def test_render(self, result):
        assert "Fig. 7" in result.render()


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08(seed=5, traces=("LBL-1", "LBL-5", "UCB"), hours=24)

    def test_cdfs_present_and_monotone(self, result):
        assert len(result.cdfs) == 3
        for cdf in result.cdfs.values():
            assert np.all(np.diff(cdf) >= -1e-12)

    def test_both_modes_present(self, result):
        """Fig. 8's bimodality: intra-burst mass below the 4 s cutoff and a
        heavy inter-burst tail above it."""
        for share in result.sub_cutoff_share.values():
            assert 0.1 < share < 0.95

    def test_tails_heavier_than_exponential(self, result):
        assert all(result.tail_heavier_than_exponential.values())

    def test_render(self, result):
        assert "Fig. 8" in result.render()


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09(seed=6, traces=("LBL-6", "LBL-7", "UK"), hours=48)

    def test_rows_present(self, result):
        assert len(result.rows_) == 3

    def test_top_half_percent_in_paper_band(self, result):
        """Paper: 30-60% of bytes in the top 0.5% of bursts."""
        for r in result.rows_:
            assert 0.10 < r.share_top_half_percent < 0.75

    def test_concentration_monotone(self, result):
        for r in result.rows_:
            assert (r.share_top_half_percent <= r.share_top_two_percent
                    <= r.share_top_ten_percent)

    def test_far_exceeds_exponential(self, result):
        assert result.all_dominated_by_tail
        assert result.exponential_benchmark == pytest.approx(0.0315, abs=0.003)

    def test_tail_shapes_heavy(self, result):
        for r in result.rows_:
            if r.tail_shape is not None:
                assert 0.6 < r.tail_shape < 2.0

    def test_render(self, result):
        assert "Fig. 9" in result.render()


class TestFig10And11:
    @pytest.fixture(scope="class")
    def lbl(self):
        return fig10(seed=7, traces=("LBL PKT-1", "LBL PKT-2"))

    @pytest.fixture(scope="class")
    def wrl(self):
        return fig11(seed=8)

    def test_shares_ordered(self, lbl):
        for r in lbl.rows_:
            assert 0.0 <= r.top05_share <= r.top2_share <= 1.0

    def test_tail_dominance(self, lbl):
        """Top 2% of bursts holds a large multiple of its fair share."""
        for r in lbl.rows_:
            assert r.top2_share > 0.08

    def test_minute_attribution_conserves_bytes(self, lbl):
        for r in lbl.rows_:
            assert np.all(r.top2_minutes <= r.minutes + 1e-6)

    def test_wrl_has_more_bursts(self, lbl, wrl):
        """Paper: the DEC WRL traces have considerably more bursts, so
        large-number laws stabilize the tail shares."""
        assert min(r.n_bursts for r in wrl.rows_) > min(
            r.n_bursts for r in lbl.rows_
        )

    def test_render(self, lbl, wrl):
        assert "Fig. 10" in lbl.render()
        assert "Fig. 11" in wrl.render()
