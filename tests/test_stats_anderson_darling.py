"""Tests for the Anderson-Darling exponentiality test (Appendix A)."""

import numpy as np
import pytest
import scipy.stats

from repro.distributions import Exponential, Pareto
from repro.stats import (
    CRITICAL_VALUES,
    anderson_darling_exponential,
    anderson_darling_statistic,
)


class TestStatistic:
    @pytest.mark.filterwarnings("ignore::FutureWarning")
    def test_agrees_with_scipy(self):
        """scipy.stats.anderson(dist='expon') computes the same raw A^2
        statistic (scipy rescales the critical values by 1/(1 + 0.6/n)
        instead of the statistic); our from-scratch version must match."""
        rng = np.random.default_rng(1)
        for _ in range(5):
            x = rng.exponential(2.0, size=200)
            ours = anderson_darling_statistic(x)
            theirs = scipy.stats.anderson(x, dist="expon").statistic
            assert ours == pytest.approx(float(theirs), rel=1e-6)

    def test_known_mean_variant(self):
        x = np.array([0.5, 1.0, 1.5, 2.0, 3.0])
        a_est = anderson_darling_statistic(x)
        a_known = anderson_darling_statistic(x, mean=1.6)
        assert a_est == pytest.approx(a_known, rel=1e-9)

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            anderson_darling_statistic([1.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            anderson_darling_statistic([-1.0, 2.0])

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            anderson_darling_statistic([1.0, 2.0], mean=0.0)


class TestSignificance:
    def test_tabulated_levels_only(self):
        with pytest.raises(ValueError):
            anderson_darling_exponential([1.0, 2.0, 3.0], significance=0.07)

    def test_critical_values_monotone(self):
        levels = sorted(CRITICAL_VALUES)
        vals = [CRITICAL_VALUES[a] for a in levels]
        assert vals == sorted(vals, reverse=True)

    def test_exponential_passes_at_expected_rate(self):
        """~95% of truly exponential samples must pass at the 5% level."""
        rng = np.random.default_rng(2)
        passes = 0
        trials = 400
        for _ in range(trials):
            x = rng.exponential(1.0, size=100)
            if anderson_darling_exponential(x).passed:
                passes += 1
        # Binomial(400, .95): mean 380, sd ~4.4; allow 5 sigma
        assert abs(passes - 380) < 22

    def test_pareto_interarrivals_fail(self):
        """Heavy-tailed interarrivals are detected essentially always."""
        rejections = 0
        for seed in range(50):
            x = Pareto(0.1, 0.9).sample(200, seed=seed)
            if not anderson_darling_exponential(x).passed:
                rejections += 1
        assert rejections >= 48

    def test_uniform_interarrivals_fail(self):
        """Light-tailed (uniform) interarrivals are also rejected."""
        rng = np.random.default_rng(3)
        rejections = 0
        for _ in range(50):
            x = rng.uniform(0.0, 2.0, size=300)
            if not anderson_darling_exponential(x).passed:
                rejections += 1
        assert rejections >= 45

    def test_stricter_level_passes_more(self):
        """A 1% test rejects less often than a 15% test."""
        x = Exponential(1.0).sample(80, seed=4)
        r15 = anderson_darling_exponential(x, significance=0.15)
        r01 = anderson_darling_exponential(x, significance=0.01)
        assert r01.critical_value > r15.critical_value

    def test_result_fields(self):
        x = Exponential(1.0).sample(64, seed=5)
        res = anderson_darling_exponential(x)
        assert res.n == 64
        assert res.significance == 0.05
        assert res.critical_value == CRITICAL_VALUES[0.05]
