"""Tests for repro.utils.binning (count processes and aggregation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import aggregate, bin_counts, bin_edges


class TestBinEdges:
    def test_basic(self):
        edges = bin_edges(0.0, 1.0, 0.25)
        assert np.allclose(edges, [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_partial_final_bin_dropped(self):
        edges = bin_edges(0.0, 1.1, 0.25)
        # 1.1 / 0.25 = 4.4 -> 4 whole bins
        assert len(edges) == 5
        assert edges[-1] == pytest.approx(1.0)

    def test_zero_span(self):
        assert len(bin_edges(5.0, 5.0, 1.0)) == 1

    def test_sub_width_span_still_one_bin(self):
        """Regression: a window narrower than one bin used to yield zero
        bins, silently discarding every in-window event."""
        edges = bin_edges(0.0, 0.05, 0.1)
        assert len(edges) == 2
        assert edges.tolist() == pytest.approx([0.0, 0.1])

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            bin_edges(0.0, 1.0, -1.0)

    def test_end_before_start_raises(self):
        with pytest.raises(ValueError):
            bin_edges(1.0, 0.0, 0.5)


class TestBinCounts:
    def test_simple_counts(self):
        counts = bin_counts([0.1, 0.2, 1.5, 2.7], width=1.0, start=0.0, end=3.0)
        assert counts.tolist() == [2, 1, 1]

    def test_events_outside_window_dropped(self):
        counts = bin_counts([-1.0, 0.5, 5.0], width=1.0, start=0.0, end=2.0)
        assert counts.tolist() == [1, 0]

    def test_empty_times(self):
        assert bin_counts([], width=1.0).size == 0

    def test_total_preserved_within_window(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 100, size=1000)
        counts = bin_counts(times, width=0.5, start=0.0, end=100.0)
        assert counts.sum() == 1000

    def test_default_window_spans_data(self):
        counts = bin_counts([1.0, 2.0, 3.0, 4.0], width=1.0)
        # window [1, 4) -> 3 bins; the event at exactly 4.0 is at the edge
        assert counts.size == 3

    def test_sub_width_window_keeps_all_events(self):
        """Regression: every event used to be silently discarded when the
        observation window spanned less than one bin width."""
        counts = bin_counts([0.01, 0.02, 0.03], width=0.1)
        assert counts.tolist() == [3]

    def test_sub_width_explicit_window(self):
        counts = bin_counts([0.01, 0.02, 0.03], width=0.1, start=0.0, end=0.05)
        assert counts.tolist() == [3]

    def test_equal_times_zero_span_window(self):
        """end == start (all timestamps identical) still yields one bin
        holding the events rather than dropping them."""
        counts = bin_counts([5.0, 5.0, 5.0], width=1.0)
        assert counts.tolist() == [3]

    def test_zero_span_window_without_events_stays_empty(self):
        counts = bin_counts([1.0, 9.0], width=1.0, start=5.0, end=5.0)
        assert counts.size == 0

    @given(
        st.lists(st.floats(min_value=0.0, max_value=99.0), min_size=1, max_size=200),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_counts_nonnegative_and_conserved(self, times, width):
        counts = bin_counts(times, width=width, start=0.0, end=100.0)
        assert np.all(counts >= 0)
        # the final bin is closed on the right (numpy histogram convention),
        # so an event exactly at the last edge belongs to the last bin
        in_window = sum(1 for t in times if 0.0 <= t <= counts.size * width)
        assert counts.sum() == in_window


class TestAggregate:
    def test_mean_aggregation(self):
        out = aggregate([1, 2, 3, 4, 5, 6], level=2)
        assert out.tolist() == [1.5, 3.5, 5.5]

    def test_sum_aggregation(self):
        out = aggregate([1, 2, 3, 4], level=2, how="sum")
        assert out.tolist() == [3.0, 7.0]

    def test_level_one_is_identity(self):
        data = [3.0, 1.0, 4.0]
        assert aggregate(data, level=1).tolist() == data

    def test_trailing_partial_block_dropped(self):
        out = aggregate([1, 2, 3, 4, 5], level=2)
        assert out.size == 2

    def test_level_larger_than_series(self):
        assert aggregate([1, 2], level=5).size == 0

    def test_bad_level_raises(self):
        with pytest.raises(ValueError):
            aggregate([1, 2], level=0)

    def test_bad_how_raises(self):
        with pytest.raises(ValueError):
            aggregate([1, 2], level=1, how="median")

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=4, max_size=100),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_aggregation_conserves_mass_over_whole_blocks(self, counts, level):
        out = aggregate(counts, level=level, how="sum")
        n = (len(counts) // level) * level
        assert out.sum() == pytest.approx(sum(counts[:n]))

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=10, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_mean_aggregation_preserves_grand_mean(self, values):
        level = 5
        out = aggregate(values, level=level)
        n = (len(values) // level) * level
        if n:
            assert out.mean() == pytest.approx(np.mean(values[:n]))
