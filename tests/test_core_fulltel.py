"""Tests for the FULL-TEL model (Section V)."""

import numpy as np
import pytest

from repro.core import FullTelModel, Scheme, multiplexed_telnet
from repro.selfsim import CountProcess, variance_time_curve


class TestConstruction:
    def test_single_parameter(self):
        m = FullTelModel(connections_per_hour=136.5)
        assert m.connections_per_hour == 136.5

    def test_validation(self):
        with pytest.raises(ValueError):
            FullTelModel(connections_per_hour=0.0)
        with pytest.raises(ValueError):
            FullTelModel(10.0, max_packets=0)


class TestConnectionSizes:
    def test_sizes_at_least_one(self):
        m = FullTelModel(100.0)
        sizes = m.sample_connection_sizes(5000, seed=1)
        assert np.all(sizes >= 1)
        assert sizes.dtype == np.int64

    def test_median_near_100(self):
        """Section V: log2-normal with log2-mean log2(100)."""
        m = FullTelModel(100.0)
        sizes = m.sample_connection_sizes(20000, seed=2)
        assert 70 < np.median(sizes) < 140

    def test_cap_respected(self):
        m = FullTelModel(100.0, max_packets=500)
        sizes = m.sample_connection_sizes(20000, seed=3)
        assert sizes.max() <= 500


class TestSynthesis:
    def test_trace_fields(self):
        m = FullTelModel(136.5)
        tr = m.synthesize(1800.0, seed=4)
        assert np.all(np.diff(tr.timestamps) >= 0)
        assert np.all(tr.timestamps < 1800.0)
        assert set(tr.protocols.tolist()) <= {"TELNET"}

    def test_reproducible(self):
        m = FullTelModel(100.0)
        a = m.synthesize(600.0, seed=5)
        b = m.synthesize(600.0, seed=5)
        assert np.array_equal(a.timestamps, b.timestamps)

    def test_warmup_trim(self):
        m = FullTelModel(136.5)
        tr = m.synthesize(1200.0, seed=6, trim_warmup=600.0)
        assert np.all(tr.timestamps >= 0.0)
        assert np.all(tr.timestamps < 600.0)

    def test_warmup_bounds(self):
        m = FullTelModel(100.0)
        with pytest.raises(ValueError):
            m.synthesize(100.0, trim_warmup=100.0)

    def test_packet_volume_scales_with_rate(self):
        lo = FullTelModel(50.0).synthesize(3600.0, seed=7)
        hi = FullTelModel(200.0).synthesize(3600.0, seed=7)
        assert len(hi) > 2 * len(lo)

    def test_count_process_helper(self):
        cp = FullTelModel(136.5).count_process(600.0, bin_width=1.0, seed=8)
        assert isinstance(cp, CountProcess)
        assert cp.n_bins == 600


class TestBurstinessShape:
    """Fig. 7's claim: FULL-TEL matches trace burstiness across scales —
    here checked as 'much burstier than an exponential-packet equivalent'."""

    def test_vt_slope_shallower_than_poisson(self):
        cp = FullTelModel(136.5).count_process(
            7200.0, bin_width=0.1, seed=9, trim_warmup=3600.0
        )
        curve = variance_time_curve(cp)
        slope = curve.slope(min_level=10, max_level=1000)
        assert slope > -0.85  # decisively shallower than -1

    def test_burstier_than_multiplexed_exponential(self):
        cp = FullTelModel(600.0).count_process(1200.0, bin_width=1.0,
                                               seed=10, trim_warmup=600.0)
        exp = multiplexed_telnet(100, 600.0, Scheme.EXP, seed=11)
        # compare index of dispersion at matched-ish rates
        assert cp.index_of_dispersion > 2.0 * exp.counts.index_of_dispersion


class TestOriginatorPacketBytes:
    def test_bytes_per_packet_near_paper(self):
        """Section V: LBL PKT-2's originator packets carried ~1.63 user
        bytes each (Nagle / line mode)."""
        from repro.traces import Direction

        tr = FullTelModel(200.0).synthesize(1800.0, seed=8)
        orig = tr.select(direction=Direction.ORIGINATOR)
        ratio = tr.sizes[orig].sum() / orig.sum()
        assert 1.3 < ratio < 2.0
