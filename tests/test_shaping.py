"""In-network conditioning and its trace-side inverse (repro.shaping).

The acceptance properties of the subsystem:

* the vectorized GCRA scan is *bit-identical* to the scalar
  ``GcraCore.offer`` reference loop on float64-exact inputs;
* a policer partitions its input exactly (accept ∪ drop, nothing lost,
  accepted timestamps untouched); a lossless shaper conserves the byte
  total and the packet multiset, moving timestamps only forward and
  monotonically;
* bucket state carries across chunk boundaries exactly — any split of
  a column (or a batch stream) reproduces the unsplit result;
* the policing detector's accumulator merge is exact and order-
  invariant, so the verdict is independent of chunking and jobs;
* the closed loop passes: traffic policed at a known rate is recovered
  from the surviving trace within 10%, and the unpoliced control comes
  back clean;
* the fluid forms conserve bytes and respect the (rho, sigma) envelope,
  and the queueing/CLI composition surfaces work end to end.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.queueing import fifo_queue
from repro.replay.source import synthesize_packets
from repro.shaping import (
    DetectorConfig,
    GcraCore,
    LeakyBucketShaper,
    PolicingDetector,
    ShapingScenario,
    TokenBucketPolicer,
    condition_batches,
    detect_times,
    detect_trace,
    fluid_police_curve,
    reference_condition,
    run_scenario,
    shaped_curve_eval,
    shaper_drain_end,
)
from repro.traces.trace import PacketTrace

DETECTOR = DetectorConfig()


@pytest.fixture(scope="module")
def dense():
    """Dense ftp packet columns (times, sizes) plus their mean rate."""
    trace = synthesize_packets("ftp", 40_000, seed=7, rate=240.0)
    t = np.asarray(trace.timestamps, dtype=float)
    c = np.asarray(trace.sizes, dtype=float)
    return t, c, float(c.sum() / (t[-1] - t[0]))


def _arrivals(seed, n, span=30.0):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.0, span, n))
    costs = rng.uniform(1.0, 2000.0, n)
    return times, costs


def _exact_arrivals(seed, n):
    """Float64-exact columns: dyadic times, integer costs."""
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.integers(0, 64, n)) / 64.0
    costs = rng.integers(1, 4096, n).astype(float)
    return times, costs


# ----------------------------------------------------------------------
# GCRA core
# ----------------------------------------------------------------------
class TestGcraCore:
    def test_advance_is_deficit_admission(self):
        core = GcraCore(100.0, 10.0)
        assert core.advance(0.0, 10.0) == 0.0  # one burst rides free
        # 1000 more units at 100/s: tat jumps to 10.1, wait is tat
        # minus the one-burst (0.1 s) conformance tolerance.
        assert core.advance(0.0, 1000.0) == pytest.approx(10.0, rel=1e-12)

    def test_offer_policer_reject_leaves_state_untouched(self):
        # Dyadic rate/depth so every tat step is float64-exact.
        core = GcraCore(128.0, 16.0)
        assert core.offer(0.0, 16.0) == (True, 0.0)
        # Conformance is tat - now <= burst_s: the packet that lands
        # exactly on the edge still conforms.
        assert core.offer(0.0, 16.0) == (True, 0.0)
        tat = core.tat
        ok, delay = core.offer(0.0, 16.0)  # now past the tolerance
        assert not ok and delay == pytest.approx(0.125)
        assert core.tat == tat  # the defining property of a policer

    def test_offer_shaper_delay_to_conformance(self):
        core = GcraCore(128.0, 16.0)
        core.offer(0.0, 16.0)
        core.offer(0.0, 16.0)  # tat now one burst past the tolerance edge
        ok, delay = core.offer(0.0, 16.0, max_wait=float("inf"))
        assert ok
        assert delay == pytest.approx(0.125)  # held until it conforms

    def test_idle_credit_capped_at_one_burst(self):
        core = GcraCore(128.0, 16.0)
        core.offer(0.0, 16.0)
        # A long idle gap refills exactly one burst, never more: one
        # full burst plus the edge packet conform, the next does not.
        assert core.offer(1000.0, 16.0) == (True, 0.0)
        assert core.offer(1000.0, 16.0) == (True, 0.0)
        ok, _ = core.offer(1000.0, 16.0)
        assert not ok

    def test_validation_messages(self):
        with pytest.raises(ValueError, match="rate must be > 0"):
            GcraCore(0.0, 1.0)
        with pytest.raises(ValueError, match="depth must be > 0"):
            GcraCore(1.0, 0.0)

    def test_burst_reset_repr(self):
        core = GcraCore(200.0, 50.0)
        assert core.burst_s == pytest.approx(0.25)
        core.advance(1.0, 5.0)
        assert core.tat is not None
        core.reset()
        assert core.tat is None
        assert "GcraCore" in repr(core)


# ----------------------------------------------------------------------
# Vectorized elements vs the scalar reference
# ----------------------------------------------------------------------
class TestScanMatchesReference:
    @pytest.mark.parametrize("element_cls,kwargs", [
        (TokenBucketPolicer, {}),
        (LeakyBucketShaper, {}),
        (LeakyBucketShaper, {"max_delay": 0.5}),
    ])
    def test_bit_identical_on_exact_inputs(self, element_cls, kwargs):
        for seed in range(10):
            times, costs = _exact_arrivals(seed, 500)
            # Power-of-two rate: cost / rate is exact in float64.
            element = element_cls(rate=4096.0, depth=8192.0, **kwargs)
            fast = element.apply(times, costs)
            slow = reference_condition(element, times, costs)
            np.testing.assert_array_equal(fast.accept, slow.accept)
            np.testing.assert_array_equal(fast.emission_times,
                                          slow.emission_times)
            assert fast.final_tat == slow.final_tat  # exact, not approx

    def test_unsorted_input_rejected(self):
        with pytest.raises(ValueError):
            TokenBucketPolicer(10.0, 10.0).apply(np.array([1.0, 0.5]))

    def test_cost_validation(self):
        pol = TokenBucketPolicer(10.0, 10.0)
        with pytest.raises(ValueError, match="one cost per arrival"):
            pol.apply(np.array([0.0, 1.0]), np.array([1.0]))
        with pytest.raises(ValueError, match=">= 0"):
            pol.apply(np.array([0.0]), np.array([-1.0]))


class TestElementProperties:
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 400),
           rate=st.floats(10.0, 1e5), burst_s=st.floats(0.05, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_policer_partitions_input_exactly(self, seed, n, rate, burst_s):
        times, costs = _arrivals(seed, n)
        res = TokenBucketPolicer(rate, burst_s * rate).apply(times, costs)
        assert res.n_accepted + res.n_dropped == n
        # Accepted packets pass through with timestamps untouched ...
        np.testing.assert_array_equal(res.accepted_times,
                                      times[res.accept])
        # ... and the cost partition is exact.
        assert res.dropped_cost + res.accepted_costs.sum() == \
            pytest.approx(costs.sum(), rel=1e-12)
        # Dropped rows have no emission time.
        assert np.isnan(res.emission_times[~res.accept]).all()
        assert res.max_delay_s == 0.0

    @given(seed=st.integers(0, 2**16), n=st.integers(1, 400),
           rate=st.floats(10.0, 1e5), burst_s=st.floats(0.05, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_shaper_conserves_and_is_monotone(self, seed, n, rate, burst_s):
        times, costs = _arrivals(seed, n)
        res = LeakyBucketShaper(rate, burst_s * rate).apply(times, costs)
        assert res.accept.all()  # lossless: nothing dropped
        assert res.accepted_costs.sum() == pytest.approx(costs.sum(),
                                                         rel=1e-12)
        np.testing.assert_array_equal(res.accepted_costs, costs)  # multiset
        # Only timestamps move: forward, and monotonically per flow.
        assert (res.delays >= 0.0).all()
        assert (np.diff(res.accepted_times) >= 0.0).all()

    @given(seed=st.integers(0, 2**16), n=st.integers(2, 300),
           max_delay=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_bounded_shaper_honours_its_bound(self, seed, n, max_delay):
        times, costs = _arrivals(seed, n, span=5.0)
        res = LeakyBucketShaper(2000.0, 1000.0,
                                max_delay=max_delay).apply(times, costs)
        assert (res.delays <= max_delay + 1e-9).all()

    @given(seed=st.integers(0, 2**16), n=st.integers(2, 400),
           k=st.integers(1, 399))
    @settings(max_examples=60, deadline=None)
    def test_tat_carry_makes_any_split_exact(self, seed, n, k):
        # Float64-exact columns: the split result is *bit-identical*.
        times, costs = _exact_arrivals(seed, n)
        k = min(k, n - 1)
        for element in (TokenBucketPolicer(512.0, 1024.0),
                        LeakyBucketShaper(512.0, 1024.0)):
            whole = element.apply(times, costs)
            a = element.apply(times[:k], costs[:k])
            b = element.apply(times[k:], costs[k:], tat=a.final_tat)
            np.testing.assert_array_equal(
                whole.accept, np.concatenate([a.accept, b.accept])
            )
            np.testing.assert_array_equal(
                whole.emission_times,
                np.concatenate([a.emission_times, b.emission_times]),
            )
            assert whole.final_tat == b.final_tat

    @given(seed=st.integers(0, 2**16), n=st.integers(2, 400),
           k=st.integers(1, 399))
    @settings(max_examples=40, deadline=None)
    def test_tat_carry_on_arbitrary_floats(self, seed, n, k):
        # On arbitrary float inputs the scan's block boundaries move with
        # the split, so emissions agree to rounding; the accept partition
        # and the carried bucket state stay exact.
        times, costs = _arrivals(seed, n)
        k = min(k, n - 1)
        for element in (TokenBucketPolicer(500.0, 800.0),
                        LeakyBucketShaper(500.0, 800.0)):
            whole = element.apply(times, costs)
            a = element.apply(times[:k], costs[:k])
            b = element.apply(times[k:], costs[k:], tat=a.final_tat)
            np.testing.assert_array_equal(
                whole.accept, np.concatenate([a.accept, b.accept])
            )
            np.testing.assert_allclose(
                whole.emission_times,
                np.concatenate([a.emission_times, b.emission_times]),
                rtol=1e-12,
            )
            assert whole.final_tat == pytest.approx(b.final_tat, rel=1e-12)


class TestConditionBatches:
    def _batches(self, times, sizes, splits):
        from repro.stream.reader import PacketBatch

        out = []
        for lo, hi in zip([0] + list(splits), list(splits) + [times.size]):
            n = hi - lo
            out.append(PacketBatch(
                timestamps=times[lo:hi],
                protocols=np.array(["FTPDATA"] * n, dtype=object),
                connection_ids=np.zeros(n, dtype=np.int64),
                directions=np.zeros(n, dtype=np.int8),
                sizes=sizes[lo:hi].astype(np.int64),
                user_data=np.ones(n, dtype=bool),
            ))
        return out

    def test_stream_is_chunking_invariant(self):
        times, costs = _arrivals(11, 600)
        sizes = np.ceil(costs)
        pol = TokenBucketPolicer(5000.0, 2500.0)
        one = list(condition_batches(self._batches(times, sizes, []), pol))
        many = list(condition_batches(
            self._batches(times, sizes, [7, 100, 101, 400]), pol
        ))
        cat = lambda bs, f: np.concatenate([f(b) for b in bs])  # noqa: E731
        np.testing.assert_array_equal(
            cat(one, lambda b: b.timestamps), cat(many, lambda b: b.timestamps)
        )
        np.testing.assert_array_equal(
            cat(one, lambda b: b.sizes), cat(many, lambda b: b.sizes)
        )

    def test_shaper_rewrites_timestamps(self):
        times, costs = _arrivals(3, 200, span=2.0)
        sizes = np.ceil(costs)
        sh = LeakyBucketShaper(10_000.0, 2_000.0)
        out = list(condition_batches(self._batches(times, sizes, [50]), sh))
        shaped = np.concatenate([b.timestamps for b in out])
        assert shaped.size == times.size
        assert (shaped >= times).all()


# ----------------------------------------------------------------------
# Fluid forms
# ----------------------------------------------------------------------
class TestFluidForms:
    @given(seed=st.integers(0, 2**16), n=st.integers(2, 200),
           rate=st.floats(100.0, 1e5), burst_s=st.floats(0.05, 4.0))
    @settings(max_examples=60, deadline=None)
    def test_police_curve_conserves_and_caps(self, seed, n, rate, burst_s):
        times, costs = _arrivals(seed, n, span=20.0)
        cum = np.concatenate([[0.0], np.cumsum(costs[1:])])
        out_t, out_c, dropped = fluid_police_curve(
            times, cum, rate, burst_s * rate
        )
        assert out_c[-1] + dropped == pytest.approx(cum[-1], rel=1e-9,
                                                    abs=1e-6)
        assert (np.diff(out_c) >= -1e-9).all()  # admitted curve monotone
        # Admitted never exceeds offered at any admitted breakpoint.
        offered_at = np.interp(out_t, times, cum)
        assert (out_c <= offered_at + 1e-6 * max(cum[-1], 1.0)).all()

    @given(seed=st.integers(0, 2**16), n=st.integers(2, 200),
           rate=st.floats(100.0, 1e5), burst_s=st.floats(0.05, 4.0))
    @settings(max_examples=60, deadline=None)
    def test_shaped_curve_conserves_at_drain_and_respects_envelope(
            self, seed, n, rate, burst_s):
        times, costs = _arrivals(seed, n, span=20.0)
        cum = np.concatenate([[0.0], np.cumsum(costs[1:])])
        depth = burst_s * rate
        drain = shaper_drain_end(times, cum, rate, depth)
        at = np.linspace(times[0], drain, 64)
        out = shaped_curve_eval(times, cum, rate, depth, at)
        assert (np.diff(out) >= -1e-6).all()  # output curve monotone
        # Never ahead of the offered curve, never beyond the envelope.
        assert (out <= np.interp(at, times, cum,
                                 right=float(cum[-1])) + 1e-6).all()
        assert out[-1] == pytest.approx(cum[-1], rel=1e-9, abs=1e-6)


# ----------------------------------------------------------------------
# Policing detection
# ----------------------------------------------------------------------
class TestDetection:
    def test_closed_loop_recovers_rate_within_10pct(self, dense):
        times, costs, mean_rate = dense
        rate = 0.5 * mean_rate
        res = TokenBucketPolicer(rate, 0.5 * rate).apply(times, costs)
        verdict = detect_times(res.accepted_times, res.accepted_costs,
                               DETECTOR)
        assert verdict.policed
        assert abs(verdict.rate - rate) / rate <= 0.10
        assert verdict.confidence >= DETECTOR.decision_threshold

    def test_unpoliced_control_is_clean(self, dense):
        times, costs, _ = dense
        verdict = detect_times(times, costs, DETECTOR)
        assert not verdict.policed

    @pytest.mark.parametrize("model", ["poisson", "fulltel"])
    def test_smooth_and_telnet_controls_are_clean(self, model):
        trace = synthesize_packets(model, 20_000, seed=3)
        verdict = detect_times(np.asarray(trace.timestamps, float),
                               np.asarray(trace.sizes, float), DETECTOR)
        assert not verdict.policed

    def test_merge_is_exact_and_order_invariant(self, dense):
        times, costs, mean_rate = dense
        rate = 0.5 * mean_rate
        res = TokenBucketPolicer(rate, 0.5 * rate).apply(times, costs)
        t, c = res.accepted_times, res.accepted_costs

        whole = PolicingDetector(DETECTOR)
        whole.update(t, c)
        reference = whole.infer()

        for n_parts, order_seed in [(3, 0), (7, 1), (13, 2)]:
            bounds = np.linspace(0, t.size, n_parts + 1).astype(int)
            parts = []
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                d = PolicingDetector(DETECTOR)
                d.update(t[lo:hi], c[lo:hi])
                parts.append(d)
            order = np.random.default_rng(order_seed).permutation(n_parts)
            merged = parts[order[0]]
            for i in order[1:]:
                merged.merge(parts[int(i)])
            assert merged.infer() == reference  # exact dataclass equality

    def test_detect_trace_jobs_invariant(self, dense, tmp_path):
        from repro.traces.io import write_packet_trace

        times, costs, mean_rate = dense
        rate = 0.5 * mean_rate
        res = TokenBucketPolicer(rate, 0.5 * rate).apply(times, costs)
        trace = PacketTrace.from_arrays(
            "policed",
            timestamps=res.accepted_times,
            sizes=np.maximum(res.accepted_costs, 1.0).astype(np.int64),
        )
        path = tmp_path / "policed.txt"
        write_packet_trace(trace, path)
        serial = detect_trace(path, jobs=1, config=DETECTOR,
                              target_chunk_bytes=64 * 1024)
        pooled = detect_trace(path, jobs=3, config=DETECTOR,
                              target_chunk_bytes=64 * 1024)
        assert serial == pooled
        assert serial.policed
        assert abs(serial.rate - rate) / rate <= 0.10

    def test_detect_trace_rejects_connection_traces(self, tmp_path):
        from repro.traces.io import write_connection_trace
        from repro.traces.trace import ConnectionTrace

        trace = ConnectionTrace.from_arrays(
            "conns", start_times=np.array([0.0, 1.0, 2.0])
        )
        path = tmp_path / "conns.txt"
        write_connection_trace(trace, path)
        with pytest.raises(ValueError):
            detect_trace(path)

    def test_verdict_surfaces(self, dense):
        times, costs, mean_rate = dense
        rate = 0.5 * mean_rate
        res = TokenBucketPolicer(rate, 0.5 * rate).apply(times, costs)
        verdict = detect_times(res.accepted_times, res.accepted_costs)
        payload = verdict.payload()
        assert json.dumps(payload)  # JSON-safe
        assert payload["policed"] and payload["rate_bps"] > 0
        assert "policing detected" in verdict.render()
        clean = detect_times(times, costs)
        assert "no policing detected" in clean.render()


# ----------------------------------------------------------------------
# Queueing composition
# ----------------------------------------------------------------------
class TestQueueComposition:
    def test_policer_prefilters_arrivals_and_services(self):
        # fifo_queue conditions in packet units (cost 1 per arrival):
        # 500 packets over 10 s against a 20 pkt/s bucket must drop.
        times, _ = _arrivals(5, 500, span=10.0)
        services = np.linspace(1e-4, 2e-4, times.size)
        pol = TokenBucketPolicer(20.0, 10.0)
        res = fifo_queue(times, services, pre=pol)
        applied = res.conditioning[0]
        assert applied.n_dropped > 0
        assert res.waiting_times.size == applied.n_accepted
        # Services are filtered alongside the arrivals they belong to.
        np.testing.assert_array_equal(res.service_times,
                                      services[applied.accept])

    def test_shaper_smooths_the_queue(self):
        rng = np.random.default_rng(8)
        # One tight burst: shaping spreads it out, the queue calms down.
        times = np.sort(rng.uniform(0.0, 0.05, 400))
        raw = fifo_queue(times, 1e-3)
        shaped = fifo_queue(
            times, 1e-3,
            pre=LeakyBucketShaper(1000.0, 10.0),  # unit costs: 1000 pkt/s
        )
        assert shaped.conditioning[0].max_delay_s > 0.0
        assert shaped.mean_wait < raw.mean_wait

    def test_elements_chain_in_order(self):
        times, _ = _arrivals(6, 300, span=5.0)
        chain = (LeakyBucketShaper(80.0, 20.0),
                 TokenBucketPolicer(50.0, 12.5))
        res = fifo_queue(times, 1e-4, pre=chain)
        assert len(res.conditioning) == 2
        assert res.conditioning[0].element is chain[0]
        assert res.conditioning[1].n_dropped > 0

    def test_first_packet_always_conforms(self):
        # A fresh GCRA bucket admits its first arrival unconditionally,
        # so a real element can never empty the queue's input.
        res = fifo_queue(np.array([0.0]), 1e-3,
                         pre=TokenBucketPolicer(1.0, 0.5))
        assert res.conditioning[0].n_accepted == 1

    def test_dropping_everything_raises(self):
        class _DropAll:
            def apply(self, times, costs=None):
                res = TokenBucketPolicer(1.0, 1.0).apply(times)
                object.__setattr__(
                    res, "accept", np.zeros(times.size, dtype=bool)
                )
                return res

            def __repr__(self):
                return "_DropAll()"

        with pytest.raises(ValueError, match="dropped every arrival"):
            fifo_queue(np.array([0.0, 1.0]), 1e-3, pre=_DropAll())


# ----------------------------------------------------------------------
# Scenario + CLI
# ----------------------------------------------------------------------
SMOKE_SCENARIO = dict(n_packets=30_000, rate_factors=(0.5,),
                      burst_seconds=(0.25, 1.0),
                      shaper_rate_factors=(1.5,), seed=7)


class TestScenario:
    def test_closed_loop_smoke_grid(self):
        report = run_scenario(ShapingScenario(**SMOKE_SCENARIO))
        assert report.control_clean
        assert report.n_recovered == len(report.cells) == 2
        assert report.max_rate_error <= 0.10
        assert report.recovery_ok
        # Lossless shaping must not move the coarse-scale LRD signature.
        assert report.coarse_hurst_conserved
        for cell in report.hurst_cells:
            assert cell.hurst_fine <= report.baseline_hurst_fine + 0.05
        text = report.render()
        assert "police → detect recovery grid" in text
        assert "Hurst impact" in text
        assert json.dumps(report.payload())

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="shaper_rate_factors"):
            ShapingScenario(shaper_rate_factors=(0.5,))
        with pytest.raises(ValueError, match="non-empty"):
            ShapingScenario(rate_factors=())

    def test_experiment_registered(self):
        from repro.experiments import REGISTRY

        assert "shaping" in REGISTRY


class TestCli:
    def test_shaping_run_json(self, capsys):
        rc = main([
            "shaping", "run", "--packets", "30000",
            "--rate-factors", "0.5", "--burst-seconds", "0.25,1.0",
            "--shaper-rate-factors", "1.5", "--json",
        ])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["recovery_ok"]
        assert out["n_recovered"] == 2
        assert all(c["rate_error"] <= 0.10 for c in out["cells"]
                   if c["recovered"])

    def test_shaping_run_writes_bench_json(self, tmp_path, capsys):
        rc = main([
            "shaping", "run", "--packets", "30000",
            "--rate-factors", "0.5", "--burst-seconds", "0.25",
            "--shaper-rate-factors", "1.5",
            "--out", str(tmp_path),
        ])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(
            (tmp_path / "BENCH_shaping_run.json").read_text()
        )
        assert payload["recovery_ok"] and "wall_time_s" in payload

    def test_loopback_police_flag(self, capsys):
        rc = main([
            "replay", "loopback", "--packets", "3000", "--model", "ftp",
            "--rate", "240", "--seed", "7", "--police-rate", "20000",
            "--json",
        ])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["zero_loss"]
        assert out["n_sent"] < 3000  # the policer dropped records in-path

    def test_loopback_shape_and_police_are_exclusive(self):
        with pytest.raises(SystemExit):
            main([
                "replay", "loopback", "--packets", "100",
                "--police-rate", "1000", "--shape-rate", "1000",
            ])
