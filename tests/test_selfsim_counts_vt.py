"""Tests for count processes and variance-time analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import homogeneous_poisson
from repro.selfsim import (
    CountProcess,
    default_levels,
    fgn_sample,
    hurst_from_variance_time,
    poisson_reference,
    variance_time_curve,
)


class TestCountProcess:
    def test_from_times(self):
        cp = CountProcess.from_times([0.05, 0.15, 0.17], 0.1, start=0.0, end=0.3)
        assert cp.counts.tolist() == [1.0, 2.0, 0.0]
        assert cp.duration == pytest.approx(0.3)

    def test_total_and_mean(self):
        cp = CountProcess([1, 2, 3], 1.0)
        assert cp.total == 6.0
        assert cp.mean == 2.0

    def test_normalized_variance(self):
        cp = CountProcess([0, 4], 1.0)
        assert cp.normalized_variance == pytest.approx(4.0 / 4.0)

    def test_normalized_variance_empty_raises(self):
        with pytest.raises(ValueError):
            CountProcess([0, 0], 1.0).normalized_variance

    def test_index_of_dispersion_poisson_near_one(self):
        t = homogeneous_poisson(50.0, 2000.0, seed=1)
        cp = CountProcess.from_times(t, 1.0, start=0.0, end=2000.0)
        assert cp.index_of_dispersion == pytest.approx(1.0, abs=0.15)

    def test_aggregated_preserves_mean(self):
        cp = CountProcess(np.arange(100, dtype=float), 0.1)
        agg = cp.aggregated(10)
        assert agg.mean == pytest.approx(cp.mean)
        assert agg.bin_width == pytest.approx(1.0)

    def test_rebinned_preserves_total(self):
        cp = CountProcess(np.ones(100), 0.1)
        reb = cp.rebinned(10)
        assert reb.total == pytest.approx(100.0)

    def test_slice_time(self):
        cp = CountProcess(np.arange(10, dtype=float), 1.0)
        s = cp.slice_time(2.0, 5.0)
        assert s.counts.tolist() == [2.0, 3.0, 4.0]

    def test_slice_time_empty_range(self):
        """An empty [start, end) range yields an empty process (same bin
        width), not an error — callers can probe arbitrary windows."""
        cp = CountProcess(np.arange(10, dtype=float), 1.0)
        s = cp.slice_time(5.0, 5.0)
        assert s.n_bins == 0
        assert s.bin_width == 1.0
        # an inverted range degrades to empty as well
        assert cp.slice_time(7.0, 3.0).n_bins == 0
        # a range entirely past the process is empty, not wrapped
        assert cp.slice_time(50.0, 60.0).n_bins == 0

    def test_bad_bin_width(self):
        with pytest.raises(ValueError):
            CountProcess([1.0], 0.0)

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_aggregation_mass_invariant(self, level):
        rng = np.random.default_rng(level)
        cp = CountProcess(rng.poisson(5, size=200).astype(float), 0.5)
        reb = cp.rebinned(level)
        whole = (200 // level) * level
        assert reb.total == pytest.approx(float(cp.counts[:whole].sum()))


class TestDefaultLevels:
    def test_starts_at_one(self):
        lv = default_levels(10000)
        assert lv[0] == 1

    def test_respects_min_blocks(self):
        lv = default_levels(1000, min_blocks=8)
        assert lv[-1] <= 125

    def test_too_few_bins_raises(self):
        with pytest.raises(ValueError):
            default_levels(4)


class TestVarianceTime:
    def test_poisson_slope_minus_one(self):
        """Poisson counts: variance decays like 1/M (slope -1)."""
        t = homogeneous_poisson(20.0, 20000.0, seed=2)
        cp = CountProcess.from_times(t, 0.1, start=0.0, end=20000.0)
        curve = variance_time_curve(cp)
        assert curve.slope() == pytest.approx(-1.0, abs=0.08)

    def test_poisson_hurst_half(self):
        t = homogeneous_poisson(20.0, 20000.0, seed=3)
        cp = CountProcess.from_times(t, 0.1, start=0.0, end=20000.0)
        assert hurst_from_variance_time(cp) == pytest.approx(0.5, abs=0.06)

    def test_fgn_slope_2h_minus_2(self):
        """fGn of known H: slope must be ~2H - 2."""
        for h in (0.6, 0.8):
            x = fgn_sample(65536, h, seed=int(h * 10)) + 10.0
            cp = CountProcess(x, 1.0)
            curve = variance_time_curve(cp, normalized=False)
            assert curve.slope() == pytest.approx(2 * h - 2, abs=0.12)

    def test_iid_variance_scaling_exact_relationship(self):
        """For i.i.d. counts Var[X^(M)] = Var[X]/M exactly in expectation."""
        rng = np.random.default_rng(4)
        cp = CountProcess(rng.poisson(10, 100000).astype(float), 1.0)
        curve = variance_time_curve(cp, levels=[1, 10, 100], normalized=False)
        assert curve.variances[1] == pytest.approx(curve.variances[0] / 10, rel=0.1)
        assert curve.variances[2] == pytest.approx(curve.variances[0] / 100, rel=0.25)

    def test_normalization_divides_by_squared_mean(self):
        rng = np.random.default_rng(5)
        counts = rng.poisson(4, 5000).astype(float)
        cp = CountProcess(counts, 0.1)
        c_norm = variance_time_curve(cp, levels=[1])
        c_raw = variance_time_curve(cp, levels=[1], normalized=False)
        assert c_norm.variances[0] == pytest.approx(
            c_raw.variances[0] / cp.mean**2
        )

    def test_poisson_reference_line(self):
        rng = np.random.default_rng(6)
        cp = CountProcess(rng.poisson(4, 5000).astype(float), 0.1)
        curve = variance_time_curve(cp, levels=[1, 10, 100])
        ref = poisson_reference(curve)
        assert ref[0] == pytest.approx(curve.variances[0])
        assert ref[1] == pytest.approx(curve.variances[0] / 10)

    def test_bad_levels(self):
        cp = CountProcess(np.ones(100), 1.0)
        with pytest.raises(ValueError):
            variance_time_curve(cp, levels=[0, 5])
        with pytest.raises(ValueError):
            variance_time_curve(cp, levels=[1, 100])  # leaves < 2 blocks

    def test_slope_range_too_narrow_raises(self):
        rng = np.random.default_rng(7)
        cp = CountProcess(rng.poisson(4, 1000).astype(float), 0.1)
        curve = variance_time_curve(cp)
        with pytest.raises(ValueError):
            curve.slope(min_level=10**9)
