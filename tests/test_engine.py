"""Tests for the parallel experiment engine (repro.engine)."""

import json
import pickle
import shutil

import numpy as np
import pytest

import repro.engine.cache as cache_mod
from repro.cli import main
from repro.engine import (
    CacheEntry,
    ResultCache,
    clear_digest_caches,
    dependency_closure,
    derived_seeds,
    registry_index,
    run_experiments,
    seed_token,
    source_digest,
    summary_payload,
    write_bench_files,
)
from repro.experiments import REGISTRY, registry_modules

#: Sub-second experiments (see the timing footer of `run all`), so the
#: engine suite stays cheap while still running real registry entries.
FAST = ["fig03", "fig04", "weathermap"]


class TestDependencyClosure:
    def test_includes_itself_and_direct_imports(self):
        closure = dependency_closure("repro.experiments.fig03")
        assert "repro.experiments.fig03" in closure
        assert "repro.distributions.tcplib" in closure

    def test_transitive(self):
        # fig03 -> distributions.tcplib -> distributions.empirical
        closure = dependency_closure("repro.experiments.fig03")
        assert "repro.distributions.empirical" in closure

    def test_excludes_unrelated_subsystems(self):
        closure = dependency_closure("repro.stats.tail")
        assert "repro.tcp.network" not in closure
        assert "repro.queueing.simulator" not in closure

    def test_unknown_module_raises(self):
        with pytest.raises(KeyError):
            dependency_closure("repro.not_a_module")

    def test_registry_modules_all_digestible(self):
        for name, module in registry_modules().items():
            digest = source_digest(module)
            assert len(digest) == 64, (name, digest)


class TestSourceDigest:
    @pytest.fixture
    def sandbox(self, tmp_path, monkeypatch):
        """A throwaway copy of the package tree so digests can watch edits."""
        root = tmp_path / "repro"
        shutil.copytree(cache_mod.package_root(), root)
        monkeypatch.setattr(cache_mod, "package_root", lambda: root)
        clear_digest_caches()
        yield root
        clear_digest_caches()

    def test_edit_in_closure_changes_digest(self, sandbox):
        before = source_digest("repro.experiments.fig03")
        target = sandbox / "distributions" / "tcplib.py"
        target.write_text(target.read_text() + "\n# touched\n")
        clear_digest_caches()
        assert source_digest("repro.experiments.fig03") != before

    def test_edit_outside_closure_preserves_digest(self, sandbox):
        before = source_digest("repro.experiments.fig03")
        target = sandbox / "tcp" / "network.py"
        target.write_text(target.read_text() + "\n# touched\n")
        clear_digest_caches()
        assert source_digest("repro.experiments.fig03") == before

    def test_external_module_gets_marker(self):
        assert source_digest("some.test.module") == "external:some.test.module"


class TestSeeds:
    def test_subset_matches_full_run(self):
        """`run fig09` must hand fig09 the same stream as `run all`."""
        solo = derived_seeds(0, ["fig09"])["fig09"]
        full = derived_seeds(0, sorted(REGISTRY))["fig09"]
        assert np.array_equal(
            solo.integers(0, 2**31, 16), full.integers(0, 2**31, 16)
        )

    def test_streams_are_distinct_across_experiments(self):
        seeds = derived_seeds(0, ["fig03", "fig09"])
        a = seeds["fig03"].integers(0, 2**31, 16)
        b = seeds["fig09"].integers(0, 2**31, 16)
        assert not np.array_equal(a, b)

    def test_master_seed_changes_streams(self):
        a = derived_seeds(0, ["fig09"])["fig09"].integers(0, 2**31, 16)
        b = derived_seeds(1, ["fig09"])["fig09"].integers(0, 2**31, 16)
        assert not np.array_equal(a, b)

    def test_tokens(self):
        assert seed_token(7, "fig09", derive=False) == "master:7"
        idx = registry_index("fig09")
        assert seed_token(7, "fig09", derive=True) == f"spawn:7:{idx}"

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            registry_index("nope")


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        entry = CacheEntry(
            name="fig03", seed_token="master:0", digest="d",
            rendered="table", result={"rows": [1, 2]}, compute_time_s=1.5,
        )
        key = cache.key("fig03", "master:0", "d")
        assert cache.get(key) is None
        cache.put(key, entry)
        got = cache.get(key)
        assert got.rendered == "table"
        assert got.result == {"rows": [1, 2]}
        assert got.compute_time_s == 1.5

    def test_key_varies_with_each_component(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key("fig03", "master:0", "d")
        assert cache.key("fig04", "master:0", "d") != base
        assert cache.key("fig03", "master:1", "d") != base
        assert cache.key("fig03", "master:0", "e") != base

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("fig03", "master:0", "d")
        cache.root.mkdir(parents=True, exist_ok=True)
        (cache.root / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.get(key) is None

    def test_wrong_payload_type_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("fig03", "master:0", "d")
        cache.root.mkdir(parents=True, exist_ok=True)
        (cache.root / f"{key}.pkl").write_bytes(pickle.dumps({"old": "shape"}))
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        entry = CacheEntry("a", "s", "d", "r", None, 0.0)
        cache.put(cache.key("a", "s", "d"), entry)
        cache.put(cache.key("b", "s", "d"), entry)
        assert cache.clear() == 2
        assert cache.clear() == 0


class TestRunner:
    def test_matches_direct_call_with_master_seed(self, tmp_path):
        report = run_experiments(
            ["fig03"], master_seed=0, cache=ResultCache(tmp_path),
            derive_seeds=False,
        )
        assert report.outputs()["fig03"] == REGISTRY["fig03"](seed=0).render()

    def test_parallel_output_identical_to_serial(self, tmp_path):
        serial = run_experiments(
            FAST, master_seed=3, jobs=1,
            cache=ResultCache(tmp_path / "serial"), derive_seeds=True,
        )
        parallel = run_experiments(
            FAST, master_seed=3, jobs=2,
            cache=ResultCache(tmp_path / "parallel"), derive_seeds=True,
        )
        assert serial.outputs() == parallel.outputs()
        assert all(r.ok for r in parallel.runs)

    def test_warm_cache_hits_and_replays(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_experiments(FAST, master_seed=0, cache=cache)
        warm = run_experiments(FAST, master_seed=0, cache=cache)
        assert [r.metrics.cache for r in cold.runs] == ["miss"] * len(FAST)
        assert [r.metrics.cache for r in warm.runs] == ["hit"] * len(FAST)
        assert warm.outputs() == cold.outputs()
        # replayed compute time is the cold run's, so footers stay identical
        assert [r.metrics.compute_time_s for r in warm.runs] == [
            r.metrics.compute_time_s for r in cold.runs
        ]

    def test_seed_isolation_in_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiments(["fig03"], master_seed=0, cache=cache)
        other = run_experiments(["fig03"], master_seed=1, cache=cache)
        assert other.runs[0].metrics.cache == "miss"

    def test_no_cache_mode(self, tmp_path):
        report = run_experiments(
            ["fig03"], master_seed=0, cache=ResultCache(tmp_path),
            use_cache=False,
        )
        assert report.runs[0].metrics.cache == "off"
        assert not list(tmp_path.glob("*.pkl"))

    def test_failure_is_reported_not_raised(self, tmp_path, monkeypatch):
        def boom(seed=0):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(REGISTRY, "boom", boom)
        report = run_experiments(
            ["fig03", "boom"], master_seed=0, cache=ResultCache(tmp_path),
        )
        assert not report.ok and report.failures == 1
        by_name = {r.name: r for r in report.runs}
        assert by_name["fig03"].ok
        assert by_name["boom"].metrics.status == "error"
        assert "synthetic failure" in by_name["boom"].metrics.error
        # a failed run must never be cached
        rerun = run_experiments(
            ["boom"], master_seed=0, cache=ResultCache(tmp_path),
        )
        assert rerun.runs[0].metrics.cache == "miss"

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiments(["nope"])

    def test_bad_jobs_raises(self):
        with pytest.raises(ValueError):
            run_experiments(["fig03"], jobs=0)


def _double(x):
    return x * 2


def _maybe_boom(x):
    if x == 2:
        raise ValueError("boom at 2")
    return x


class TestPoolMap:
    from repro.engine import pool_map  # re-exported at package level

    def test_inline_order_and_results(self):
        from repro.engine import pool_map

        assert pool_map(_double, [(1,), (2,), (3,)], jobs=1) == [2, 4, 6]

    def test_parallel_outcomes_in_task_order(self):
        from repro.engine import pool_map

        tasks = [(i,) for i in range(8)]
        assert pool_map(_double, tasks, jobs=3) == [i * 2 for i in range(8)]

    def test_exceptions_captured_not_raised(self):
        from repro.engine import pool_map

        out = pool_map(_maybe_boom, [(1,), (2,), (3,)], jobs=2)
        assert out[0] == 1 and out[2] == 3
        assert isinstance(out[1], ValueError)

    def test_on_result_sees_every_task(self):
        from repro.engine import pool_map

        seen = []
        pool_map(_double, [(5,), (6,)], jobs=1,
                 on_result=lambda i, outcome, wall: seen.append((i, outcome)))
        assert sorted(seen) == [(0, 10), (1, 12)]

    def test_bad_jobs_raises(self):
        from repro.engine import pool_map

        with pytest.raises(ValueError):
            pool_map(_double, [(1,)], jobs=0)

    def test_empty_tasks(self):
        from repro.engine import pool_map

        assert pool_map(_double, [], jobs=4) == []


class TestProgressLogging:
    def test_quiet_by_default(self, tmp_path, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            run_experiments(["fig03"], master_seed=0,
                            cache=ResultCache(tmp_path))
        assert not caplog.records

    def test_run_logs_start_and_completion(self, tmp_path, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.engine"):
            run_experiments(["fig03"], master_seed=0,
                            cache=ResultCache(tmp_path))
        text = caplog.text
        assert "running 1 experiment(s)" in text
        assert "fig03" in text and "done in" in text

    def test_cache_hit_logged(self, tmp_path, caplog):
        import logging

        cache = ResultCache(tmp_path)
        run_experiments(["fig03"], master_seed=0, cache=cache)
        with caplog.at_level(logging.INFO, logger="repro.engine"):
            run_experiments(["fig03"], master_seed=0, cache=cache)
        assert "cache hit" in caplog.text

    def test_failure_logged(self, tmp_path, caplog, monkeypatch):
        import logging

        def boom(seed=0):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(REGISTRY, "boom", boom)
        with caplog.at_level(logging.INFO, logger="repro.engine"):
            run_experiments(["boom"], master_seed=0,
                            cache=ResultCache(tmp_path))
        assert "FAILED" in caplog.text

    def test_stream_scan_logs_chunks(self, tmp_path, caplog):
        import logging

        from repro.stream import scan_trace, write_stream_trace

        path = tmp_path / "t.txt"
        write_stream_trace(path, n_packets=1000, seed=0,
                           hours=0.1, window_hours=0.05)
        with caplog.at_level(logging.INFO, logger="repro.stream"):
            scan_trace(path)
        assert "1 chunk(s)" in caplog.text
        assert "1000 records" in caplog.text


class TestMetricsEmission:
    def test_summary_shape(self, tmp_path):
        report = run_experiments(
            ["fig03"], master_seed=0, cache=ResultCache(tmp_path),
        )
        summary = report.summary()
        assert summary["bench"] == "repro-run"
        assert summary["n_experiments"] == 1
        record = summary["experiments"][0]
        for field in ("bench", "seed_token", "digest", "wall_time_s",
                      "compute_time_s", "cache", "worker", "status"):
            assert field in record, field
        json.dumps(summary)  # must be serializable as-is

    def test_write_bench_files(self, tmp_path):
        report = run_experiments(
            ["fig03"], master_seed=0, cache=ResultCache(tmp_path / "cache"),
        )
        out = tmp_path / "bench"
        written = write_bench_files(report.summary(), out)
        assert (out / "BENCH_fig03.json").exists()
        assert (out / "BENCH_summary.json").exists()
        assert len(written) == 2
        payload = json.loads((out / "BENCH_fig03.json").read_text())
        assert payload["bench"] == "fig03" and payload["status"] == "ok"

    def test_summary_payload_counts(self):
        summary = summary_payload(
            [], master_seed=0, jobs=2, derive_seeds=True, total_wall_s=0.0
        )
        assert summary["cache_hits"] == 0 and summary["failures"] == 0


class TestCli:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_run_json(self, capsys):
        assert main(["run", "fig03", "--json", "--no-cache"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["experiments"][0]["bench"] == "fig03"
        assert summary["experiments"][0]["cache"] == "off"

    def test_run_jobs_matches_serial(self, capsys):
        import re

        def normalized(text):
            # the compute-time footer legitimately jitters for uncached
            # runs; everything else must be byte-identical
            return re.sub(r"\[fig03: \d+\.\ds\]", "[fig03: Ts]", text)

        assert main(["run", "fig03", "--seed", "5", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "fig03", "--seed", "5", "--no-cache",
                     "--jobs", "2"]) == 0
        assert normalized(capsys.readouterr().out) == normalized(serial)

    def test_warm_run_byte_identical(self, capsys):
        assert main(["run", "fig03"]) == 0
        cold = capsys.readouterr().out
        assert main(["run", "fig03"]) == 0
        assert capsys.readouterr().out == cold

    def test_spawn_seeds_changes_output(self, capsys):
        assert main(["run", "fig14", "--no-cache"]) == 0
        legacy = capsys.readouterr().out
        assert main(["run", "fig14", "--no-cache", "--spawn-seeds"]) == 0
        assert capsys.readouterr().out != legacy

    def test_out_writes_bench_files(self, tmp_path, capsys):
        out = tmp_path / "bench"
        assert main(["run", "fig03", "--no-cache", "--out", str(out)]) == 0
        assert (out / "BENCH_fig03.json").exists()
        assert (out / "BENCH_summary.json").exists()

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2

    def test_cache_dir_and_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        assert main(["cache", "dir", "--cache-dir", str(cache_dir)]) == 0
        assert str(cache_dir) in capsys.readouterr().out
        assert main(["run", "fig03", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert list(cache_dir.glob("*.pkl"))
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not list(cache_dir.glob("*.pkl"))
