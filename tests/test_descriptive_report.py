"""Tests for arrival-process fingerprints and the report formatting helpers."""

import numpy as np
import pytest

from repro.arrivals import (
    compound_poisson_cluster,
    homogeneous_poisson,
    timer_driven_arrivals,
)
from repro.distributions import Exponential, Pareto
from repro.experiments.report import (
    ascii_sparkline,
    format_series,
    format_table,
    format_value,
)
from repro.stats import summarize_arrivals


class TestSummarizeArrivals:
    def test_poisson_fingerprint(self):
        t = homogeneous_poisson(0.5, 20000.0, seed=1)
        s = summarize_arrivals(t, bin_width=60.0)
        assert s.poisson_like
        assert s.rate == pytest.approx(0.5, rel=0.1)
        assert s.interarrival_cv == pytest.approx(1.0, abs=0.1)

    def test_timer_fingerprint(self):
        t = timer_driven_arrivals(30.0, 20000.0, jitter_sd=0.5, seed=2)
        s = summarize_arrivals(t, bin_width=60.0)
        assert not s.poisson_like
        assert s.interarrival_cv < 0.2  # clockwork
        assert s.index_of_dispersion < 0.5  # under-dispersed

    def test_cluster_fingerprint(self):
        t = compound_poisson_cluster(0.02, 50000.0, Pareto(1.0, 1.2),
                                     Exponential(0.5), seed=3)
        s = summarize_arrivals(t, bin_width=60.0)
        assert not s.poisson_like
        assert s.index_of_dispersion > 1.5  # over-dispersed

    def test_row_keys(self):
        t = homogeneous_poisson(1.0, 1000.0, seed=4)
        row = summarize_arrivals(t).row()
        assert {"events", "rate_per_s", "ia_cv", "IoD"} <= set(row)

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_arrivals([1.0, 2.0])
        with pytest.raises(ValueError):
            summarize_arrivals(np.ones(20), bin_width=0.0)


class TestFormatting:
    def test_format_value_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_format_value_float_ranges(self):
        assert format_value(0.0) == "0"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(0.25) == "0.25"
        assert format_value(1e-5) == "1e-05"

    def test_format_table_alignment(self):
        out = format_table([{"a": 1, "bb": True}, {"a": 22, "bb": False}],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="X")

    def test_format_table_column_selection(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_format_series_thins_long_input(self):
        x = np.arange(500.0)
        out = format_series(x, x**2, "x", "y", max_rows=10)
        assert len(out.splitlines()) <= 13

    def test_sparkline_shapes(self):
        assert ascii_sparkline(np.zeros(10)) == " " * 10
        line = ascii_sparkline(np.arange(100.0), width=20)
        assert len(line) == 20
        assert line[-1] in "%@"

    def test_sparkline_empty(self):
        assert ascii_sparkline(np.zeros(0)) == ""
