"""Tests for the TELNET responder model (the paper's future work), TCP
retransmission timeouts (Section VI's 1-2 s internal gaps), diurnal
detrending (Section VII's nonstationarity caveat), and the ASCII plot."""

import numpy as np
import pytest

from repro.arrivals import homogeneous_poisson
from repro.core import FullTelModel, TelnetResponderModel
from repro.experiments.report import ascii_loglog
from repro.selfsim import (
    CountProcess,
    fgn_sample,
    nonstationarity_check,
    remove_cycle,
)
from repro.tcp import BottleneckSimulator, TransferSpec
from repro.traces import Direction


class TestTelnetResponder:
    @pytest.fixture(scope="class")
    def model(self):
        return TelnetResponderModel()

    def test_every_keystroke_echoed(self, model):
        t = np.arange(0.0, 100.0, 1.0)
        resp_t, resp_s = model.respond(t, seed=1, echo_delay=0.1)
        # at least one response packet per originator packet
        assert resp_t.size >= t.size
        assert np.sum(resp_s == model.echo_bytes) == t.size

    def test_echo_delay_applied(self, model):
        t = np.array([5.0])
        resp_t, _ = model.respond(t, seed=2, echo_delay=0.25)
        assert np.all(resp_t >= 5.25 - 1e-9)

    def test_responder_bytes_dominate(self, model):
        """The stylized fact: responder bytes >> originator bytes."""
        ratio = model.byte_ratio_estimate(seed=3)
        assert 10.0 < ratio < 200.0

    def test_empty_input(self, model):
        resp_t, resp_s = model.respond(np.zeros(0), seed=4)
        assert resp_t.size == resp_s.size == 0

    def test_sorted_output(self, model):
        t = homogeneous_poisson(1.0, 500.0, seed=5)
        resp_t, _ = model.respond(t, seed=6)
        assert np.all(np.diff(resp_t) >= 0)

    def test_no_commands_means_echoes_only(self):
        m = TelnetResponderModel(command_probability=0.0)
        t = np.arange(0.0, 50.0, 1.0)
        resp_t, resp_s = m.respond(t, seed=7, echo_delay=0.1)
        assert resp_t.size == t.size
        assert np.all(resp_s == m.echo_bytes)

    def test_validation(self):
        with pytest.raises(ValueError):
            TelnetResponderModel(command_probability=1.5)
        with pytest.raises(ValueError):
            TelnetResponderModel(output_rate=0.0)

    def test_fulltel_integration(self):
        trace = FullTelModel(200.0).synthesize(1800.0, seed=8,
                                               include_responder=True)
        orig = trace.select(direction=Direction.ORIGINATOR)
        resp = trace.select(direction=Direction.RESPONDER)
        assert resp.sum() >= orig.sum()  # echoes alone match 1:1
        byte_ratio = trace.sizes[resp].sum() / trace.sizes[orig].sum()
        assert byte_ratio > 10.0
        assert np.all(trace.timestamps < 1800.0)

    def test_fulltel_default_is_originator_only(self):
        trace = FullTelModel(200.0).synthesize(600.0, seed=9)
        assert trace.select(direction=Direction.RESPONDER).sum() == 0


class TestTcpTimeouts:
    def test_timeouts_occur_under_heavy_loss(self):
        """A tiny buffer shared by many senders forces windows below the
        fast-retransmit threshold, triggering RTOs."""
        sim = BottleneckSimulator(rate=80.0, buffer_packets=3)
        specs = [TransferSpec(0.0, 800, rtt=0.1, max_window=32, rto=1.0)
                 for _ in range(6)]
        res = sim.run(specs)
        assert sum(t.timeouts for t in res.transfers) > 0

    def test_timeout_creates_second_scale_gaps(self):
        """Section VI: '1-2 s spacings that can occur internal to a single
        FTPDATA connection due to TCP retransmission timeouts'."""
        sim = BottleneckSimulator(rate=80.0, buffer_packets=3)
        specs = [TransferSpec(0.0, 800, rtt=0.1, max_window=32, rto=1.0)
                 for _ in range(6)]
        res = sim.run(specs)
        # per-connection internal gaps in the 0.8-2.5 s band
        found = False
        for i in range(len(specs)):
            gaps = np.diff(res.connection_times(i))
            if np.any((gaps > 0.8) & (gaps < 2.5)):
                found = True
        assert found

    def test_timeout_resets_to_slow_start(self):
        from repro.tcp import RenoSender

        s = RenoSender(1000, initial_ssthresh=64.0)
        s.cwnd = 8.0
        q = s.next_segment()
        s.on_timeout(q)
        assert s.cwnd == 1.0
        assert s.ssthresh == pytest.approx(4.0)
        assert s.next_segment() == q  # retransmit first

    def test_no_timeouts_with_large_windows(self):
        sim = BottleneckSimulator(rate=500.0, buffer_packets=64)
        res = sim.run([TransferSpec(0.0, 2000, rtt=0.1, max_window=32)])
        assert res.transfers[0].timeouts == 0

    def test_rto_validation(self):
        with pytest.raises(ValueError):
            TransferSpec(0.0, 10, rto=0.0)


class TestDetrending:
    def _cyclic_poisson(self, n, period, seed):
        rng = np.random.default_rng(seed)
        phase = np.arange(n) % period
        rate = 20.0 * (1.0 + 0.8 * np.sin(2 * np.pi * phase / period))
        return rng.poisson(np.maximum(rate, 0.1)).astype(float)

    def test_remove_cycle_flattens_phase_means(self):
        x = self._cyclic_poisson(6000, 100, seed=1)
        d = remove_cycle(x, 100)
        phases = d[: (d.size // 100) * 100].reshape(-1, 100).mean(axis=0)
        assert phases.std() / phases.mean() < 0.05

    def test_subtract_mode(self):
        x = self._cyclic_poisson(6000, 100, seed=2)
        d = remove_cycle(x, 100, how="subtract")
        assert d.mean() == pytest.approx(x[:6000].mean(), rel=0.01)

    def test_cyclic_poisson_flagged_nonstationary(self):
        """A pure rate cycle mimics LRD on the VT plot; detrending
        reveals it."""
        x = self._cyclic_poisson(20000, 500, seed=3)
        check = nonstationarity_check(CountProcess(x, 1.0), 500)
        assert check.raw_slope > -0.8  # looks LRD before detrending
        assert check.looks_nonstationary

    def test_true_lrd_survives_detrending(self):
        x = fgn_sample(20000, 0.85, seed=4) * 3.0 + 30.0
        check = nonstationarity_check(CountProcess(x, 1.0), 500)
        assert not check.looks_nonstationary
        assert check.detrended_slope > -0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            remove_cycle(np.ones(10), 1)
        with pytest.raises(ValueError):
            remove_cycle(np.ones(10), 8)
        with pytest.raises(ValueError):
            remove_cycle(np.ones(100), 10, how="magic")


class TestAsciiLogLog:
    def test_renders_grid_and_legend(self):
        x = np.geomspace(1, 1000, 20)
        out = ascii_loglog(x, {"TRACE": 1.0 / x, "EXP": 0.5 / x})
        lines = out.splitlines()
        assert len(lines) == 19  # 18 rows + axis line
        assert "T=TRACE" in lines[-1]
        assert any("T" in line for line in lines[:-1])

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            ascii_loglog(np.array([1.0, 2.0]), {"A": np.array([5.0, 5.0])})


class TestPureAcks:
    def test_acks_present_and_filterable(self):
        """Section IV filters originator packets 'consisting of no user
        data (pure ack)'; the responder-enabled synthesis must emit them."""
        from repro.core import FullTelModel

        tr = FullTelModel(200.0).synthesize(1800.0, seed=8,
                                            include_responder=True)
        orig_all = int(tr.select(direction=Direction.ORIGINATOR).sum())
        orig_data = int(tr.select(direction=Direction.ORIGINATOR,
                                  user_data_only=True).sum())
        assert orig_all > orig_data  # pure acks exist
        acks = tr.select(direction=Direction.ORIGINATOR) & ~tr.user_data
        assert np.all(tr.sizes[acks] == 0)

    def test_no_acks_without_responder(self):
        from repro.core import FullTelModel

        tr = FullTelModel(200.0).synthesize(600.0, seed=9)
        assert np.all(tr.user_data)
