"""End-to-end tests for the out-of-core streaming scan (repro.stream).

The acceptance properties of the subsystem:

* a streamed scan reproduces the in-memory batch path *bit-identically* —
  count-process bins vs ``CountProcess.from_times`` and tail samples / β
  fits vs ``pareto.tail_fit`` on the full interarrival set;
* a shard-merged scan over any k chunks equals the single-pass scan;
* ``--jobs N`` equals ``--jobs 1``;
* ``.gz`` traces stream transparently (single sequential chunk).
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.distributions.pareto import tail_fit
from repro.selfsim.counts import CountProcess
from repro.stream import (
    SummaryConfig,
    iter_trace_batches,
    plan_chunks,
    scan_trace,
    sniff_kind,
    write_stream_trace,
)
from repro.traces import read_packet_trace

N_PACKETS = 40_000
BIN_WIDTH = 0.05


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("stream") / "trace.txt"
    info = write_stream_trace(path, n_packets=N_PACKETS, seed=42,
                              hours=0.5, window_hours=0.25)
    assert info.n_packets == N_PACKETS
    return path


@pytest.fixture(scope="module")
def batch_trace(trace_path):
    return read_packet_trace(trace_path)


@pytest.fixture(scope="module")
def config():
    return SummaryConfig(bin_width=BIN_WIDTH)


class TestChunkPlanning:
    def test_chunks_tile_the_file(self, trace_path):
        size = trace_path.stat().st_size
        chunks = plan_chunks(trace_path, target_bytes=100_000)
        assert len(chunks) > 3
        assert chunks[0].start == 0 and chunks[0].has_header
        assert chunks[-1].end == size
        for a, b in zip(chunks, chunks[1:]):
            assert a.end == b.start
            assert not b.has_header

    def test_boundaries_are_line_aligned(self, trace_path):
        data = trace_path.read_bytes()
        for chunk in plan_chunks(trace_path, target_bytes=64_000):
            if chunk.start:
                assert data[chunk.start - 1:chunk.start] == b"\n"

    def test_max_chunks_cap(self, trace_path):
        assert len(plan_chunks(trace_path, target_bytes=10_000,
                               max_chunks=3)) == 3

    def test_records_survive_any_chunking(self, trace_path, batch_trace):
        for target in (50_000, 137_000, 10**9):
            total = 0
            for chunk in plan_chunks(trace_path, target_bytes=target):
                from repro.stream import iter_chunk_batches

                total += sum(len(b) for b in iter_chunk_batches(chunk))
            assert total == len(batch_trace)


class TestReader:
    def test_sniff_kind(self, trace_path):
        assert sniff_kind(trace_path) == "packet"

    def test_batches_match_batch_reader(self, trace_path, batch_trace):
        ts, sizes, protos = [], [], []
        for batch in iter_trace_batches(trace_path, block_bytes=100_000):
            ts.append(batch.timestamps)
            sizes.append(batch.sizes)
            protos.append(batch.protocols)
        ts = np.concatenate(ts)
        assert np.array_equal(ts, batch_trace.timestamps)
        assert np.array_equal(np.concatenate(sizes), batch_trace.sizes)
        assert np.array_equal(
            np.concatenate(protos).astype(str), batch_trace.protocols.astype(str)
        )

    def test_bad_header_raises(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("#repro-connections v1\n")
        with pytest.raises(ValueError, match="header"):
            list(iter_trace_batches(p, kind="packet"))

    def test_malformed_record_raises(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("#repro-packets v1\n1.0 TELNET 1 0 1\n")  # 5 fields
        with pytest.raises(ValueError, match="malformed"):
            list(iter_trace_batches(p))


class TestStreamEqualsBatch:
    """The headline acceptance property: streamed == in-memory, bit-for-bit."""

    def test_bin_counts_bit_identical(self, trace_path, batch_trace, config):
        report = scan_trace(trace_path, config=config,
                            target_chunk_bytes=150_000)
        batch = CountProcess.from_times(
            batch_trace.timestamps, BIN_WIDTH, start=0.0
        )
        streamed = report.summary.counts.finalize()
        assert np.array_equal(streamed, batch.counts)

    def test_tail_samples_and_beta_bit_identical(
        self, trace_path, batch_trace, config
    ):
        report = scan_trace(trace_path, config=config,
                            target_chunk_bytes=150_000)
        gaps = np.diff(batch_trace.timestamps)
        k = 512
        assert np.array_equal(
            report.summary.gap_tail.tail_samples(k), np.sort(gaps)[-k:]
        )
        loc, beta, kk = report.summary.interarrival_tail_beta(0.03)
        expected = tail_fit(gaps, 0.03)
        assert loc == expected.location and beta == expected.shape

    def test_size_tail_bit_identical(self, trace_path, batch_trace, config):
        report = scan_trace(trace_path, config=config,
                            target_chunk_bytes=150_000)
        sizes = batch_trace.sizes.astype(float)
        loc, beta, _ = report.summary.size_tail_beta(0.05)
        expected = tail_fit(sizes, 0.05)
        assert loc == expected.location and beta == expected.shape

    def test_moments_match(self, trace_path, batch_trace, config):
        report = scan_trace(trace_path, config=config,
                            target_chunk_bytes=150_000)
        s = report.summary
        assert s.n == len(batch_trace)
        assert s.size_moments.mean == pytest.approx(
            batch_trace.sizes.mean(), rel=1e-12
        )
        gaps = np.diff(batch_trace.timestamps)
        assert s.gap_moments.n == gaps.size
        assert s.gap_moments.mean == pytest.approx(gaps.mean(), rel=1e-10)

    def test_quantile_sketch_within_bound(self, trace_path, batch_trace,
                                          config):
        report = scan_trace(trace_path, config=config,
                            target_chunk_bytes=150_000)
        gaps = np.sort(np.diff(batch_trace.timestamps))
        sk = report.summary.gap_quantiles
        assert sk.total_weight == gaps.size
        bound = sk.max_rank_error()
        assert bound < gaps.size * 0.05
        for q in (0.1, 0.5, 0.9, 0.99):
            v = sk.quantile(q)
            lo = np.searchsorted(gaps, v, side="left")
            hi = np.searchsorted(gaps, v, side="right")
            target = q * gaps.size
            assert max(0.0, max(lo - target, target - hi)) <= bound + 1

    def test_variance_time_matches_batch(self, trace_path, batch_trace,
                                         config):
        from repro.selfsim.variance_time import variance_time_curve

        report = scan_trace(trace_path, config=config,
                            target_chunk_bytes=150_000)
        streamed = report.summary.counts.variance_time()
        batch = variance_time_curve(
            CountProcess.from_times(batch_trace.timestamps, BIN_WIDTH,
                                    start=0.0)
        )
        assert np.array_equal(streamed.levels, batch.levels)
        assert np.array_equal(streamed.variances, batch.variances)


class TestShardDeterminism:
    """Any chunking, any job count: identical results."""

    @pytest.fixture(scope="class")
    def single(self, trace_path, config):
        return scan_trace(trace_path, config=config,
                          target_chunk_bytes=10**9)  # one chunk

    @pytest.mark.parametrize("target", [60_000, 150_000, 400_000])
    def test_any_k_chunks_identical(self, trace_path, batch_trace, config,
                                    single, target):
        """Integer sketches are partition-exact for ANY chunking; float
        merges agree to rounding; the quantile sketch stays in-bound."""
        sharded = scan_trace(trace_path, config=config,
                             target_chunk_bytes=target)
        assert len(sharded.chunk_metrics) > 1
        a, b = single.summary, sharded.summary
        assert b.n == a.n == N_PACKETS
        # bit-identical: bin counts and tail order statistics
        assert np.array_equal(a.counts.finalize(), b.counts.finalize())
        assert np.array_equal(a.gap_tail.values, b.gap_tail.values)
        assert np.array_equal(a.size_tail.values, b.size_tail.values)
        assert np.array_equal(a.size_log2.counts, b.size_log2.counts)
        # float merges: different partitions agree to machine rounding
        assert b.gap_moments.mean == pytest.approx(a.gap_moments.mean,
                                                   rel=1e-12)
        assert b.gap_moments.m2 == pytest.approx(a.gap_moments.m2, rel=1e-9)
        assert np.allclose(a.bytes.finalize(), b.bytes.finalize(),
                           rtol=1e-12)
        # quantile sketch: weight conserved, queries stay within the bound
        gaps = np.sort(np.diff(batch_trace.timestamps))
        sk = b.gap_quantiles
        assert sk.total_weight == gaps.size
        bound = sk.max_rank_error()
        for q in (0.1, 0.5, 0.9):
            v = sk.quantile(q)
            lo = np.searchsorted(gaps, v, side="left")
            hi = np.searchsorted(gaps, v, side="right")
            target_rank = q * gaps.size
            assert max(0.0, max(lo - target_rank, target_rank - hi)) \
                <= bound + 1

    def test_jobs_invariance(self, trace_path, config):
        one = scan_trace(trace_path, config=config, jobs=1,
                         target_chunk_bytes=150_000)
        three = scan_trace(trace_path, config=config, jobs=3,
                           target_chunk_bytes=150_000)
        assert np.array_equal(one.summary.counts.finalize(),
                              three.summary.counts.finalize())
        assert one.summary.gap_moments.mean == three.summary.gap_moments.mean
        assert one.summary.gap_quantiles.quantile(0.5) == \
            three.summary.gap_quantiles.quantile(0.5)
        assert np.array_equal(one.summary.gap_tail.values,
                              three.summary.gap_tail.values)

    def test_gzip_scan_matches_plain(self, tmp_path, trace_path, config):
        import gzip as gz
        import shutil

        gz_path = tmp_path / "trace.txt.gz"
        with open(trace_path, "rb") as src, gz.open(gz_path, "wb") as dst:
            shutil.copyfileobj(src, dst)
        plain = scan_trace(trace_path, config=config,
                           target_chunk_bytes=150_000)
        packed = scan_trace(gz_path, config=config)
        assert len(packed.chunk_metrics) == 1  # no random access into gzip
        assert np.array_equal(plain.summary.counts.finalize(),
                              packed.summary.counts.finalize())
        assert np.array_equal(plain.summary.gap_tail.values,
                              packed.summary.gap_tail.values)


class TestScanReport:
    def test_bench_payload_shape(self, trace_path, config):
        report = scan_trace(trace_path, config=config,
                            target_chunk_bytes=150_000)
        payload = report.bench_payload()
        assert payload["bench"] == "stream_scan"
        assert payload["n_records"] == N_PACKETS
        assert payload["n_chunks"] == len(report.chunk_metrics) > 1
        assert payload["accumulator_nbytes"] > 0
        assert payload["peak_rss_kb"] > 0
        for rec in payload["chunks"]:
            assert rec["rows_per_s"] > 0
        json.dumps(payload)  # serializable as-is

    def test_write_bench(self, trace_path, config, tmp_path):
        report = scan_trace(trace_path, config=config)
        report.write_bench(tmp_path)
        assert (tmp_path / "BENCH_stream_scan.json").exists()
        payload = json.loads(
            (tmp_path / "BENCH_stream_scan.json").read_text()
        )
        assert payload["n_records"] == N_PACKETS

    def test_render_mentions_key_stats(self, trace_path, config):
        text = scan_trace(trace_path, config=config).render()
        assert f"{N_PACKETS:,d}" in text
        assert "gap tail beta" in text
        assert "var-time slope" in text
        assert "sketch memory" in text

    def test_per_protocol(self, trace_path, config):
        report = scan_trace(trace_path, config=config, per_protocol=True,
                            target_chunk_bytes=150_000)
        assert "TELNET" in report.per_protocol
        assert sum(s.n for s in report.per_protocol.values()) == N_PACKETS

    def test_corrupt_chunk_raises(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("#repro-packets v1\n1.0 TELNET 1 0 1 0\ngarbage\n")
        with pytest.raises(RuntimeError, match="chunk"):
            scan_trace(p)


class TestConnectionScan:
    def test_scan_connection_trace(self, tmp_path):
        from repro.traces import (
            ConnectionRecord,
            ConnectionTrace,
            write_connection_trace,
        )

        rng = np.random.default_rng(0)
        starts = np.sort(rng.uniform(0, 100, 500))
        recs = [
            ConnectionRecord(float(t), 1.0, "FTP",
                             int(rng.pareto(1.2) * 1000) + 1, 100, 1, 2, None)
            for t in starts
        ]
        path = tmp_path / "conns.txt"
        write_connection_trace(ConnectionTrace("x", recs), path)
        report = scan_trace(path, config=SummaryConfig(bin_width=1.0))
        assert report.kind == "connection"
        assert report.summary.n == 500
        # sizes on a connection scan are total bytes (the burst size)
        assert report.summary.total_bytes == sum(
            r.bytes_orig + r.bytes_resp for r in recs
        )


class TestStreamCli:
    def test_synth_and_scan(self, tmp_path, capsys):
        path = tmp_path / "small.txt"
        assert main(["stream", "synth", str(path), "--packets", "2000",
                     "--hours", "0.1", "--window-hours", "0.05",
                     "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "2,000 packets" in out
        assert main(["stream", "scan", str(path)]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "2,000" in out

    def test_scan_json_and_out(self, tmp_path, capsys):
        path = tmp_path / "small.txt"
        main(["stream", "synth", str(path), "--packets", "1500",
              "--hours", "0.1", "--window-hours", "0.05"])
        capsys.readouterr()
        out_dir = tmp_path / "bench"
        assert main(["stream", "scan", str(path), "--json",
                     "--jobs", "2", "--out", str(out_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bench"] == "stream_scan"
        assert payload["n_records"] == 1500
        assert (out_dir / "BENCH_stream_scan.json").exists()

    def test_gz_synth(self, tmp_path, capsys):
        path = tmp_path / "small.txt.gz"
        assert main(["stream", "synth", str(path), "--packets", "1000",
                     "--hours", "0.1", "--window-hours", "0.05"]) == 0
        capsys.readouterr()
        assert sniff_kind(path) == "packet"
        assert main(["stream", "scan", str(path)]) == 0
        assert "1,000" in capsys.readouterr().out
