"""Tests that the substitute Tcplib TELNET interarrival table matches every
property the paper publishes about the real one (Section IV / Fig. 3)."""

import numpy as np
import pytest

from repro.distributions import Exponential, tail_fit
from repro.distributions.tcplib import (
    telnet_connection_bytes,
    telnet_connection_packets,
    telnet_packet_interarrival,
)


@pytest.fixture(scope="module")
def dist():
    return telnet_packet_interarrival()


@pytest.fixture(scope="module")
def sample(dist):
    return dist.sample(200000, seed=42)


class TestPaperAnchors:
    def test_under_two_percent_below_8ms(self, dist):
        assert dist.cdf(0.008) < 0.02

    def test_over_fifteen_percent_above_1s(self, dist):
        assert dist.sf(1.0) > 0.15

    def test_arithmetic_mean_near_1_1s(self, dist):
        assert 0.9 < dist.mean < 1.4

    def test_geometric_mean_in_think_time_range(self, dist):
        assert 0.1 < dist.geometric_mean_value < 0.4

    def test_upper_tail_pareto_shape_near_095(self, sample):
        fit = tail_fit(sample, tail_fraction=0.03)
        assert 0.8 < fit.shape < 1.2

    def test_heavier_tail_than_exponential_comparator(self, dist):
        """The paper: exponential 'grievously underestimates' long gaps."""
        exp = Exponential(dist.mean)
        for x in (5.0, 10.0, 30.0):
            assert dist.sf(x) > exp.sf(x)

    def test_exponential_geometric_fit_crosses_body(self, dist, sample):
        """Fig. 3: the geometric-mean exponential fit agrees with the data
        somewhere in the 'think time' body and diverges in both tails."""
        exp = Exponential.fit_geometric(sample)
        x = np.geomspace(0.05, 1.0, 200)
        diff = exp.cdf(x) - dist.cdf(x)
        assert diff.min() < 0 < diff.max()  # curves cross in the body

    def test_shorter_interarrivals_overestimated_by_exp_fit(self, dist, sample):
        exp = Exponential.fit_geometric(sample)
        assert exp.cdf(0.005) > dist.cdf(0.005)

    def test_longer_interarrivals_underestimated_by_exp_fit(self, dist, sample):
        exp = Exponential.fit_geometric(sample)
        assert exp.sf(2.0) < dist.sf(2.0)


class TestConnectionSizeLaws:
    def test_packets_log2_normal_centered_at_100(self):
        d = telnet_connection_packets()
        assert d.median == pytest.approx(100.0, rel=1e-6)

    def test_bytes_log_extreme_location(self):
        d = telnet_connection_bytes()
        assert 2.0**d.alpha == pytest.approx(100.0, rel=1e-6)

    def test_bytes_heavier_than_packets(self):
        """Section V: the byte law generates much larger sizes than the
        packet law — the reason the authors refit packets separately."""
        bytes_d = telnet_connection_bytes()
        pkts_d = telnet_connection_packets()
        assert bytes_d.sf(1e5) > pkts_d.sf(1e5)


class TestSamplingBehaviour:
    def test_draws_positive(self, sample):
        assert np.all(sample > 0)

    def test_packet_count_over_2000s_near_paper(self, dist):
        """Fig. 4: ~1900-2200 packets from a 2000 s connection."""
        counts = []
        for seed in range(5):
            ia = dist.sample(6000, seed=seed)
            counts.append(int((np.cumsum(ia) < 2000.0).sum()))
        assert 1200 < np.mean(counts) < 2400


class TestPacketByteLaw:
    def test_mean_bytes_per_packet_matches_paper(self):
        """Section V: ~85,000 packets carrying ~139,000 user-data bytes,
        i.e. ~1.63 bytes per originator packet."""
        from repro.distributions.tcplib import telnet_packet_bytes

        d = telnet_packet_bytes()
        assert 1.4 < d.mean < 1.9

    def test_mostly_single_keystrokes(self):
        from repro.distributions.tcplib import telnet_packet_bytes

        d = telnet_packet_bytes()
        s = d.sample(20000, seed=1)
        assert np.mean(s <= 1.5) > 0.7  # most packets carry one keystroke
        assert s.max() <= 40.0
