"""Tests for the Section VIII implication experiments and the CLI."""

import numpy as np
import pytest

from repro.cli import main, run_experiment
from repro.experiments import (
    REGISTRY,
    admission_comparison,
    mgk_comparison,
    priority_starvation,
    tcp_dynamics,
)


class TestPriorityStarvation:
    @pytest.fixture(scope="class")
    def result(self):
        return priority_starvation(seed=0)

    def test_lrd_starves_longer(self, result):
        assert result.starvation_ratio > 2.0

    def test_lrd_worse_tail_delay(self, result):
        assert result.lrd.p99_low_delay > result.poisson.p99_low_delay

    def test_render(self, result):
        assert "starvation" in result.render()


class TestAdmissionComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return admission_comparison(seed=0)

    def test_lrd_misled_more(self, result):
        assert result.lrd.misled_rate > 2.0 * max(result.poisson.misled_rate,
                                                  0.005)

    def test_both_policies_admit(self, result):
        assert result.lrd.admission_rate > 0.5
        assert result.poisson.admission_rate > 0.5

    def test_render(self, result):
        assert "admission" in result.render()


class TestTcpDynamics:
    @pytest.fixture(scope="class")
    def result(self):
        return tcp_dynamics(seed=0)

    def test_rates_differ_across_connections(self, result):
        assert result.rate_cv > 0.2

    def test_rate_varies_within_connection(self, result):
        assert result.within_rate_swing > 1.5

    def test_interarrivals_not_exponential(self, result):
        assert not result.interarrivals_exponential

    def test_congestion_occurred(self, result):
        assert result.total_drops > 0

    def test_render(self, result):
        assert "M/G/inf" in result.render()


class TestMGkComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return mgk_comparison(seed=0)

    def test_correlations_survive_finite_k(self, result):
        assert result.correlations_survive

    def test_includes_infinite_reference(self, result):
        assert any(r["k"] == "inf" for r in result.rows())

    def test_render(self, result):
        assert "M/G/k" in result.render()


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "appendix_c" in out

    def test_run_experiment(self, capsys):
        assert run_experiment("fig14", seed=1) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out

    def test_unknown_experiment(self, capsys):
        assert run_experiment("nope", seed=0) == 2

    def test_registry_complete(self):
        """Every table/figure/appendix of the paper has a registry entry."""
        for name in ("table1", "table2", "appendix_c", "appendix_d",
                     "appendix_e", "delay", "priority", "admission",
                     "tcp_dynamics", "mgk"):
            assert name in REGISTRY
        for i in range(1, 16):
            assert f"fig{i:02d}" in REGISTRY

    def test_all_registry_entries_accept_seed(self):
        """`python -m repro run all` calls every entry with seed=...; the
        signatures must allow it."""
        import inspect

        for name, fn in REGISTRY.items():
            params = inspect.signature(fn).parameters
            assert "seed" in params, name


class TestUdpCompetition:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import udp_competition

        return udp_competition(seed=0)

    def test_tcp_yields(self, result):
        """'only the FTP traffic will adjust to fit the available
        bandwidth' — TCP gives up roughly the UDP stream's share."""
        assert 0.3 < result.tcp_yield_fraction < 0.7

    def test_udp_unimpeded(self, result):
        """'The UDP traffic will continue unimpeded.'"""
        assert result.udp_delivery_ratio > 0.9

    def test_tcp_suffers_the_drops(self, result):
        assert result.tcp_drops_shared > 0

    def test_render(self, result):
        assert "UDP" in result.render()
