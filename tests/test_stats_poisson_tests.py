"""Integration tests of the full Appendix A pipeline: Poisson input must be
declared Poisson-consistent; the paper's non-Poisson mechanisms must fail."""

import numpy as np
import pytest

from repro.arrivals import (
    cascade_arrivals,
    compound_poisson_cluster,
    homogeneous_poisson,
    pareto_renewal_arrivals,
    piecewise_poisson,
    timer_driven_arrivals,
)
from repro.distributions import Exponential, Pareto
from repro.stats import split_into_intervals, evaluate_arrival_process, evaluate_interval


class TestSplitIntoIntervals:
    def test_basic_split(self):
        chunks = split_into_intervals(np.arange(0.0, 100.0), 25.0, start=0.0, end=100.0)
        assert len(chunks) == 4
        assert all(c.size == 25 for c in chunks)

    def test_partial_interval_dropped(self):
        chunks = split_into_intervals(np.arange(0.0, 10.0), 4.0, start=0.0, end=10.0)
        assert len(chunks) == 2

    def test_empty(self):
        assert split_into_intervals([], 10.0) == []

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            split_into_intervals([1.0], 0.0)


class TestTestInterval:
    def test_poisson_interval_usually_passes(self):
        passes = 0
        for seed in range(100):
            t = homogeneous_poisson(0.1, 3600.0, seed=seed)
            o = evaluate_interval(t)
            passes += o.exponential_passed and o.independence_passed
        assert passes >= 80  # ~0.95 * 0.95 expected jointly

    def test_periodic_interval_fails_exponential(self):
        t = np.arange(0.0, 3600.0, 10.0)
        o = evaluate_interval(t)
        assert not o.exponential_passed


class TestFullPipelinePoissonInputs:
    def test_homogeneous_poisson_consistent(self):
        t = homogeneous_poisson(0.05, 24 * 3600.0, seed=1)
        res = evaluate_arrival_process(t, 3600.0, start=0.0, end=24 * 3600.0)
        assert res.poisson_consistent
        assert res.exponential_pass_rate > 0.8
        assert res.correlation_label == ""

    def test_hourly_varying_poisson_consistent_at_hour_scale(self):
        """The paper's model: Poisson with *fixed hourly rates* — rate
        changes between hours must not trigger rejection."""
        rates = [0.02 + 0.04 * (8 <= h <= 17) for h in range(24)]
        t = piecewise_poisson(rates, 3600.0, seed=2)
        res = evaluate_arrival_process(t, 3600.0, start=0.0, end=24 * 3600.0)
        assert res.poisson_consistent

    def test_ten_minute_intervals_also_consistent(self):
        t = homogeneous_poisson(0.1, 6 * 3600.0, seed=3)
        res = evaluate_arrival_process(t, 600.0, start=0.0, end=6 * 3600.0)
        assert res.poisson_consistent

    def test_sparse_intervals_skipped(self):
        t = homogeneous_poisson(0.002, 48 * 3600.0, seed=4)  # ~7 per hour
        with pytest.raises(ValueError):
            evaluate_arrival_process(t, 3600.0, min_arrivals=20)


class TestFullPipelineNonPoissonInputs:
    def test_pareto_renewal_rejected(self):
        """Heavy-tailed interarrivals (the TELNET packet process) fail."""
        t = pareto_renewal_arrivals(20000, shape=0.9, location=0.1, seed=5)
        end = float(t[-1])
        res = evaluate_arrival_process(t, end / 20.0, start=0.0, end=end)
        assert not res.poisson_consistent

    def test_timer_driven_rejected(self):
        """NNTP-style periodic arrivals decisively fail."""
        t = timer_driven_arrivals(30.0, 24 * 3600.0, jitter_sd=1.0, seed=6)
        res = evaluate_arrival_process(t, 3600.0, start=0.0, end=24 * 3600.0)
        assert not res.poisson_consistent
        assert res.exponential_pass_rate < 0.2

    def test_clustered_rejected(self):
        """Mailing-list-explosion cluster arrivals fail the roll-up."""
        t = compound_poisson_cluster(
            0.01, 5 * 24 * 3600.0, Pareto(1.0, 1.1), Exponential(2.0), seed=7
        )
        res = evaluate_arrival_process(t, 3600.0, start=0.0, end=5 * 24 * 3600.0)
        assert not res.poisson_consistent

    def test_modulated_rate_positively_correlated(self):
        """Slowly varying intensity (SMTP's timer/queue behaviour) yields
        the paper's consistent '+' annotation."""
        from repro.arrivals import modulated_poisson

        t = modulated_poisson(
            (0.01, 0.2), (900.0, 900.0), 5 * 24 * 3600.0, seed=77
        )
        res = evaluate_arrival_process(t, 3600.0, start=0.0, end=5 * 24 * 3600.0)
        assert not res.poisson_consistent
        assert res.correlation_label == "+"

    def test_cascade_rejected(self):
        t = cascade_arrivals(0.02, 2 * 24 * 3600.0, 0.8, Exponential(30.0), seed=8)
        res = evaluate_arrival_process(t, 3600.0, start=0.0, end=2 * 24 * 3600.0)
        assert not res.poisson_consistent


class TestResultReporting:
    def test_summary_row_keys(self):
        t = homogeneous_poisson(0.05, 10 * 3600.0, seed=9)
        res = evaluate_arrival_process(t, 3600.0, start=0.0, end=10 * 3600.0)
        row = res.summary_row()
        assert set(row) == {"interval", "tested", "exp_pass_pct", "indep_pass_pct", "poisson", "corr"}

    def test_counts_add_up(self):
        t = homogeneous_poisson(0.05, 10 * 3600.0, seed=10)
        res = evaluate_arrival_process(t, 3600.0, start=0.0, end=10 * 3600.0)
        assert res.n_intervals_tested <= res.n_intervals_total == 10
