"""Equivalence tests for the vectorized hot-path kernels.

Every kernel in :mod:`repro.kernels` (and every call site converted to it)
is checked against the frozen pre-PR loop implementation in
:mod:`repro.kernels.reference` — bit-for-bit where the module promises it,
``allclose`` where only reassociation differs (FARIMA; documented there).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.cluster import compound_poisson_cluster, timer_driven_arrivals
from repro.arrivals.onoff import OnOffSource
from repro.core.ftp import FtpSessionModel, coalesce_bursts
from repro.core.fulltel import FullTelModel
from repro.core.telnet import (
    ConnectionSpec,
    Scheme,
    multiplexed_telnet,
    synthesize_packet_arrivals,
)
from repro.kernels import (
    block_view,
    grouped_cumsum,
    grouped_sort,
    grouped_sum,
    lindley_waits,
    segment_starts,
)
from repro.kernels.reference import (
    coalesce_bursts_loop,
    compound_poisson_cluster_loop,
    farima_autocovariance_loop,
    lindley_waits_loop,
    onoff_intervals_loop,
    rs_means_loop,
    synthesize_packet_arrivals_loop,
)
from repro.queueing.delay import multiplexed_arrival_stream
from repro.queueing.simulator import fifo_queue
from repro.selfsim.farima import farima_autocovariance
from repro.selfsim.rs_analysis import rs_analysis


# ----------------------------------------------------------------------
# Lindley closed form
# ----------------------------------------------------------------------
class TestLindley:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 17, 1000])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_integer_valued_inputs_bit_identical(self, n, seed):
        # Integer-valued floats keep every +/- exact, so the closed form's
        # bit-for-bit claim is testable, not just approximate.
        rng = np.random.default_rng(seed)
        s = rng.integers(0, 50, n).astype(float)
        a = rng.integers(0, 50, max(n - 1, 0)).astype(float)
        got = lindley_waits(s, a)
        ref = lindley_waits_loop(s, a)
        assert got.dtype == ref.dtype and np.array_equal(got, ref)

    @pytest.mark.parametrize("seed", range(5))
    def test_float_inputs_close_and_exactly_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 2000))
        s = rng.exponential(1.0, n)
        a = rng.exponential(1.2, n - 1)
        got = lindley_waits(s, a)
        ref = lindley_waits_loop(s, a)
        assert np.all(got >= 0.0)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    def test_first_wait_is_zero(self):
        assert lindley_waits(np.array([5.0, 1.0]), np.array([9.0]))[0] == 0.0

    def test_gap_length_validated(self):
        with pytest.raises(ValueError, match="gaps"):
            lindley_waits(np.ones(4), np.ones(4))

    @given(st.integers(0, 60), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_loop(self, n, seed):
        rng = np.random.default_rng(seed)
        s = rng.integers(0, 20, n).astype(float)
        a = rng.integers(0, 20, max(n - 1, 0)).astype(float)
        assert np.array_equal(lindley_waits(s, a), lindley_waits_loop(s, a))

    def test_fifo_queue_uses_closed_form_exactly(self):
        rng = np.random.default_rng(3)
        t = np.cumsum(rng.integers(0, 9, 5000)).astype(float)
        s = rng.integers(0, 12, 5000).astype(float)
        got = fifo_queue(t, s)
        ref = lindley_waits_loop(s[np.argsort(t, kind="stable")],
                                 np.diff(np.sort(t)))
        assert np.array_equal(got.waiting_times, ref)


# ----------------------------------------------------------------------
# Segmented kernels
# ----------------------------------------------------------------------
class TestSegmentKernels:
    @pytest.mark.parametrize("seed", range(4))
    def test_grouped_cumsum_matches_per_segment(self, seed):
        rng = np.random.default_rng(seed)
        lens = rng.integers(0, 30, 40)
        vals = rng.exponential(1.0, int(lens.sum()))
        offs = rng.normal(size=lens.size) * 10
        got = grouped_cumsum(vals, lens, offsets=offs)
        pos = 0
        for i, ln in enumerate(lens):
            seg = vals[pos: pos + ln]
            assert np.array_equal(got[pos: pos + ln], offs[i] + np.cumsum(seg))
            pos += ln

    @pytest.mark.parametrize("seed", range(4))
    def test_grouped_sort_matches_per_segment(self, seed):
        rng = np.random.default_rng(seed)
        lens = rng.integers(0, 25, 30)
        vals = rng.normal(size=int(lens.sum()))
        got = grouped_sort(vals, lens)
        pos = 0
        for ln in lens:
            assert np.array_equal(got[pos: pos + ln],
                                  np.sort(vals[pos: pos + ln]))
            pos += ln

    def test_grouped_sum_empty_segments_are_zero(self):
        lens = np.array([3, 0, 2, 0])
        vals = np.array([1.5, 2.5, 3.0, 10.0, 20.0])
        got = grouped_sum(vals, lens)
        assert np.array_equal(
            got, [vals[:3].sum(), 0.0, vals[3:].sum(), 0.0]
        )

    def test_segment_starts(self):
        assert np.array_equal(segment_starts(np.array([2, 0, 3])), [0, 2, 2])
        assert segment_starts(np.zeros(0, dtype=int)).size == 0

    def test_block_view_is_a_view(self):
        x = np.arange(12.0)
        v = block_view(x, 4)
        assert v.shape == (3, 4) and v.base is x

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_cumsum(np.ones(5), np.array([2, 2]))
        with pytest.raises(ValueError):
            grouped_sum(np.ones(3), np.array([2, -1]))


# ----------------------------------------------------------------------
# FARIMA autocovariance
# ----------------------------------------------------------------------
class TestFarimaCumprod:
    @pytest.mark.parametrize("d", [-0.45, -0.2, 0.0, 0.1, 0.25, 0.45])
    def test_bit_identical_to_ratio_ordered_recursion(self, d):
        got = farima_autocovariance(d, 4096, sigma2=1.7)
        ref = np.empty(4097)
        ref[0] = got[0]
        g = ref[0]
        for k in range(4096):
            g *= (k + d) / (k + 1.0 - d)
            ref[k + 1] = g
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("d", [-0.4, 0.2, 0.45])
    def test_close_to_historical_loop_ordering(self, d):
        got = farima_autocovariance(d, 4096, sigma2=0.9)
        ref = farima_autocovariance_loop(d, 4096, sigma2=0.9)
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_max_lag_zero(self):
        got = farima_autocovariance(0.3, 0)
        assert got.shape == (1,) and got[0] == farima_autocovariance_loop(0.3, 0)[0]


# ----------------------------------------------------------------------
# TELNET synthesis (shared-stream contract: bit-identical to pre-PR loop)
# ----------------------------------------------------------------------
class TestTelnetBatched:
    def _random_specs(self, rng, scheme):
        specs = []
        for _ in range(int(rng.integers(0, 25))):
            n = int(rng.integers(0, 40))
            specs.append(ConnectionSpec(
                start_time=float(rng.uniform(0, 100)),
                n_packets=n,
                duration=float(rng.uniform(0.5, 30))
                if scheme is Scheme.VAR_EXP else None,
            ))
        return specs

    @pytest.mark.parametrize("scheme", list(Scheme))
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("horizon", [None, 80.0])
    def test_bit_identical_to_loop(self, scheme, seed, horizon):
        rng = np.random.default_rng(100 + seed)
        specs = self._random_specs(rng, scheme)
        t1, i1 = synthesize_packet_arrivals(specs, scheme, seed=seed,
                                            horizon=horizon)
        t2, i2 = synthesize_packet_arrivals_loop(specs, scheme, seed, horizon)
        assert np.array_equal(t1, t2) and np.array_equal(i1, i2)

    @pytest.mark.parametrize("scheme", [Scheme.TCPLIB, Scheme.VAR_EXP])
    def test_edge_specs(self, scheme):
        dur = 5.0 if scheme is Scheme.VAR_EXP else None
        for specs in ([],
                      [ConnectionSpec(0.0, 0)],
                      [ConnectionSpec(1.0, 1, duration=dur)],
                      [ConnectionSpec(0.0, 0), ConnectionSpec(2.0, 2, duration=dur)]):
            t1, i1 = synthesize_packet_arrivals(specs, scheme, seed=9)
            t2, i2 = synthesize_packet_arrivals_loop(specs, scheme, 9, None)
            assert np.array_equal(t1, t2) and np.array_equal(i1, i2)

    def test_var_exp_missing_duration_still_raises(self):
        with pytest.raises(ValueError, match="duration"):
            synthesize_packet_arrivals(
                [ConnectionSpec(0.0, 3)], Scheme.VAR_EXP, seed=0
            )

    def test_multiplexed_jobs_bit_identical(self):
        a = multiplexed_telnet(n_connections=8, duration=30.0, seed=5, jobs=1)
        b = multiplexed_telnet(n_connections=8, duration=30.0, seed=5, jobs=3)
        assert np.array_equal(a.counts.counts, b.counts.counts)


# ----------------------------------------------------------------------
# FULL-TEL / FTP (per-connection child-stream contract: batch == loop == jobs)
# ----------------------------------------------------------------------
class TestSourceModelBatching:
    @pytest.mark.parametrize("seed", [0, 11])
    def test_fulltel_batch_loop_jobs_identical(self, seed):
        model = FullTelModel(connections_per_hour=400.0)
        a = model.synthesize(1800.0, seed=seed, batch=True)
        b = model.synthesize(1800.0, seed=seed, batch=False)
        c = model.synthesize(1800.0, seed=seed, batch=True, jobs=3)
        for x, y in ((a, b), (a, c)):
            assert np.array_equal(x.timestamps, y.timestamps)
            assert np.array_equal(x.connection_ids, y.connection_ids)
            assert np.array_equal(x.sizes, y.sizes)
            assert np.array_equal(x.user_data, y.user_data)

    def test_fulltel_trim_and_responder_paths(self):
        model = FullTelModel(connections_per_hour=300.0)
        trimmed = model.synthesize(600.0, seed=1, trim_warmup=100.0)
        assert trimmed.timestamps.size and trimmed.timestamps.min() >= 0.0
        resp = model.synthesize(600.0, seed=1, include_responder=True)
        plain = model.synthesize(600.0, seed=1)
        assert resp.timestamps.size > plain.timestamps.size

    @pytest.mark.parametrize("seed", [0, 7])
    def test_ftp_batch_loop_jobs_identical(self, seed):
        model = FtpSessionModel(sessions_per_hour=90.0)
        a = model.synthesize(3600.0, seed=seed, batch=True)
        b = model.synthesize(3600.0, seed=seed, batch=False)
        c = model.synthesize(3600.0, seed=seed, batch=True, jobs=4)
        assert a == b == c

    def test_delay_stream_jobs_identical(self):
        a = multiplexed_arrival_stream(Scheme.EXP, 10, 40.0, seed=2, jobs=1)
        b = multiplexed_arrival_stream(Scheme.EXP, 10, 40.0, seed=2, jobs=3)
        assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Burst coalescing
# ----------------------------------------------------------------------
class TestCoalesceVectorized:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_loop_on_random_sessions(self, seed):
        rng = np.random.default_rng(seed)
        for trial in range(100):
            n = int(rng.integers(1, 50))
            s = np.sort(rng.uniform(0, 400, n))
            d = rng.exponential(3.0, n)
            b = rng.integers(1, 10**7, n)
            assert coalesce_bursts(s, d, b, session_id=trial) == \
                coalesce_bursts_loop(s, d, b, 4.0, trial)

    def test_single_burst_fast_path(self):
        # All gaps within the spacing rule: one burst, same as the loop.
        s = np.array([0.0, 1.0, 2.5])
        d = np.array([0.8, 1.2, 0.1])
        b = np.array([10, 20, 30])
        got = coalesce_bursts(s, d, b)
        assert got == coalesce_bursts_loop(s, d, b, 4.0, 0)
        assert len(got) == 1 and got[0].n_connections == 3
        assert got[0].total_bytes == 60

    def test_overlapping_connection_end_times(self):
        # A long first transfer can outlast its successors: end_time must be
        # the max end in the burst, not the last connection's end.
        s = np.array([0.0, 1.0])
        d = np.array([50.0, 1.0])
        b = np.array([5, 5])
        got = coalesce_bursts(s, d, b)
        assert got == coalesce_bursts_loop(s, d, b, 4.0, 0)
        assert got[0].end_time == 50.0


# ----------------------------------------------------------------------
# R/S analysis, cluster, ON/OFF
# ----------------------------------------------------------------------
class TestBlockKernels:
    @pytest.mark.parametrize("seed", range(3))
    def test_rs_means_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        x = np.diff(rng.normal(size=3000).cumsum())
        sizes = np.unique(
            np.round(np.geomspace(8, x.size // 4, 12)).astype(int)
        )
        res = rs_analysis(x, seed=seed)
        ks, ms = rs_means_loop(x, sizes, 50, seed)
        assert np.array_equal(res.block_sizes, ks)
        assert np.array_equal(res.rs_values, ms)

    def test_rs_zero_variance_blocks_skipped_identically(self):
        rng = np.random.default_rng(4)
        x = np.concatenate([np.zeros(80), rng.normal(size=432)])
        sizes = np.unique(
            np.round(np.geomspace(8, x.size // 4, 12)).astype(int)
        )
        res = rs_analysis(x, seed=0)
        ks, ms = rs_means_loop(x, sizes, 50, 0)
        assert np.array_equal(res.rs_values, ms)

    def test_cluster_matches_loop_under_order_free_dists(self):
        # A deterministic distribution makes the draw-order contract change
        # invisible, so the vectorized assembly must equal the pre-PR loop.
        class Const:
            def __init__(self, v):
                self.v = v

            def sample(self, n, seed=None):
                if seed is not None and hasattr(seed, "random"):
                    seed.random(n)
                return np.full(n, self.v)

        for seed in (0, 3, 11):
            a = compound_poisson_cluster(0.5, 150.0, Const(3.4), Const(0.25),
                                         seed=seed)
            b = compound_poisson_cluster_loop(0.5, 150.0, Const(3.4),
                                              Const(0.25), seed)
            assert np.array_equal(a, b)

    def test_timer_driven_broadcast_matches_scalar(self):
        got = timer_driven_arrivals(7.5, 300.0, batch_size=4, batch_gap=0.05)
        firings = np.arange(0.0, 300.0, 7.5)
        ref = np.sort(np.concatenate(
            [f + 0.05 * np.arange(4) for f in firings]
        ))
        assert np.array_equal(got, ref[(ref >= 0) & (ref < 300.0)])
        assert timer_driven_arrivals(5.0, 0.0).size == 0

    def test_onoff_blocked_matches_loop_under_order_free_dists(self):
        class Const:
            def __init__(self, v):
                self.v = v

            def sample(self, n, seed=None):
                if seed is not None and hasattr(seed, "random"):
                    seed.random(n)
                return np.full(n, self.v)

        src = OnOffSource(Const(2.0), Const(3.0), rate=1.0)
        for seed in (0, 5):
            for start_on in (True, False, None):
                assert src.intervals(117.0, seed=seed, start_on=start_on) == \
                    onoff_intervals_loop(src, 117.0, seed, start_on)

    def test_onoff_intervals_cover_and_clip(self):
        src = OnOffSource.pareto(rate=2.0)
        out = src.intervals(50.0, seed=8, start_on=True)
        assert out and out[0][0] == 0.0
        for lo, hi in out:
            assert 0.0 <= lo < hi <= 50.0
