"""Property tests for the windowed/decaying monitor sketches.

The load-bearing contracts (see ``repro.monitor.windows``):

* **twin reduction** — every windowed sketch at ``window=inf`` /
  ``decay=0`` is *bit-identical* to its unbounded ``repro.stream``
  twin under any partition of the input;
* **shard-merge order invariance** — merging per-shard sketches in any
  order yields the identical state (decay weights are pure functions of
  the item and the merged clock, never of the path the item took to get
  there); for the count/order-statistic sketches and at ``decay=0`` the
  merge also reproduces the single-writer state exactly;
* **O(window) memory** — a finite-window ladder's buffer is bounded by
  the window, independent of stream length.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor import (
    DecayedMoments,
    DecayedTopK,
    SlidingCountLadder,
    WindowedQuantileSketch,
)
from repro.stream import CountLadder, QuantileSketch, StreamingMoments, TopK


def _split(arr, cuts):
    idx = sorted(set(int(c) % (arr.size + 1) for c in cuts))
    return np.split(arr, idx)


def _times(n=2000, span=100.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.sort(rng.uniform(0.0, span, n))


# ----------------------------------------------------------------------
# Twin reduction: window=inf / decay=0 is bit-identical to the twin
# ----------------------------------------------------------------------
class TestTwinReduction:
    @given(
        st.lists(st.integers(0, 1999), min_size=0, max_size=5),
        st.floats(0.05, 2.0),
        st.integers(0, 2 ** 31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_ladder_inf_window_matches_count_ladder(self, cuts, bin_width,
                                                    seed):
        times = _times(seed=seed)
        twin = CountLadder(bin_width)
        windowed = SlidingCountLadder(bin_width, window=math.inf)
        for piece in _split(times, cuts):
            twin.update(piece)
            windowed.update(piece)
        assert np.array_equal(windowed.finalize(), twin.finalize())
        assert np.array_equal(windowed.window_counts(), twin.finalize())
        assert windowed.n_events == twin.n_events
        assert windowed.evicted_events == 0

    @given(st.lists(st.integers(0, 1999), min_size=0, max_size=5),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_moments_zero_decay_matches_streaming_moments(self, cuts, seed):
        rng = np.random.default_rng(seed)
        x = rng.pareto(1.3, 2000) + 0.1
        times = _times(seed=seed)
        twin = StreamingMoments()
        decayed = DecayedMoments(decay=0.0)
        for piece, t in zip(_split(x, cuts), _split(times, cuts)):
            twin.update(piece)
            decayed.update(piece, now=float(t[-1]) if t.size else None)
        assert decayed.n == twin.n
        assert decayed.mean == twin.mean
        assert decayed.m2 == twin.m2
        assert decayed.total == twin.total
        assert decayed.min == twin.min and decayed.max == twin.max

    @given(st.lists(st.integers(0, 1999), min_size=0, max_size=5),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_topk_zero_decay_matches_topk(self, cuts, seed):
        rng = np.random.default_rng(seed)
        x = rng.pareto(1.1, 2000) + 0.05
        times = _times(seed=seed)
        twin = TopK(128)
        decayed = DecayedTopK(128, decay=0.0)
        for piece, t in zip(_split(x, cuts), _split(times, cuts)):
            twin.update(piece)
            decayed.update(piece, t)
        assert np.array_equal(decayed.values, twin.values)
        assert decayed.n_seen == twin.n_seen
        assert decayed.n_eff == twin.n_seen
        assert decayed.tail_fit(0.05) == twin.tail_fit(0.05)
        assert decayed.max_tail_fraction() == twin.max_tail_fraction()

    @given(st.lists(st.integers(0, 1999), min_size=0, max_size=5),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_quantiles_inf_window_match_quantile_sketch(self, cuts, seed):
        rng = np.random.default_rng(seed)
        x = rng.lognormal(6.0, 2.0, 2000)
        times = _times(seed=seed)
        twin = QuantileSketch(64)
        windowed = WindowedQuantileSketch(64, window=math.inf)
        for piece, t in zip(_split(x, cuts), _split(times, cuts)):
            twin.update(piece)
            windowed.update(piece, t)
        assert windowed.n == twin.n
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert windowed.quantile(q) == twin.quantile(q)
        assert windowed.max_rank_error() == twin.max_rank_error()


# ----------------------------------------------------------------------
# Shard-merge order invariance
# ----------------------------------------------------------------------
class TestMergeOrderInvariance:
    @given(st.permutations(range(4)), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_windowed_ladder_shards_any_order(self, order, seed):
        """Per-shard windowed ladders merged in any order equal the
        single-writer ladder over the concatenated stream."""
        times = _times(n=4000, span=200.0, seed=seed)
        pieces = _split(times, [1000, 2000, 3000])
        single = SlidingCountLadder(0.1, window=30.0)
        for piece in pieces:
            single.update(piece)
        shards = []
        for piece in pieces:
            shard = SlidingCountLadder(0.1, window=30.0)
            shard.update(piece)
            shards.append(shard)
        merged = SlidingCountLadder(0.1, window=30.0)
        for i in order:
            merged.merge(shards[i])
        assert np.array_equal(merged.window_counts(), single.window_counts())
        assert merged.window_bounds() == single.window_bounds()
        assert merged.n_events == single.n_events
        assert merged.max_time == single.max_time

    @given(st.permutations(range(4)), st.floats(0.0, 0.5),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_decayed_topk_shards_any_order(self, order, decay, seed):
        """Decay weights are pure functions of (value time, merged clock),
        so every merge *order* yields the same state bit-for-bit.  At
        ``decay=0`` the merged shards also equal the single writer (pure
        top-k selection is a semilattice); with ``decay > 0`` that
        stronger identity is not promised — capacity truncation at a
        shard's intermediate clock does not commute with age eviction."""
        rng = np.random.default_rng(seed)
        x = rng.pareto(1.2, 2000) + 0.1
        times = _times(seed=seed)
        pieces = list(zip(_split(x, [500, 1000, 1500]),
                          _split(times, [500, 1000, 1500])))
        shards = []
        for vals, t in pieces:
            shard = DecayedTopK(64, decay=decay)
            shard.update(vals, t)
            shards.append(shard)
        merged = DecayedTopK(64, decay=decay)
        for i in order:
            merged.merge(shards[i])
        ordered = DecayedTopK(64, decay=decay)
        for shard in shards:
            ordered.merge(shard)
        assert np.array_equal(merged.values, ordered.values)
        assert np.array_equal(merged.times, ordered.times)
        assert merged.t_ref == ordered.t_ref
        assert merged.n_seen == ordered.n_seen
        assert merged.n_eff == pytest.approx(ordered.n_eff, rel=1e-12)
        assert np.array_equal(merged.weights(), ordered.weights())
        if decay == 0.0:
            single = DecayedTopK(64, decay=0.0)
            for vals, t in pieces:
                single.update(vals, t)
            assert np.array_equal(merged.values, single.values)
            assert merged.n_eff == single.n_eff

    def test_decayed_moments_merge_commutes(self):
        rng = np.random.default_rng(9)
        a = DecayedMoments(decay=0.1)
        a.update(rng.pareto(1.5, 500) + 0.1, now=10.0)
        b = DecayedMoments(decay=0.1)
        b.update(rng.pareto(1.5, 500) + 0.1, now=25.0)
        ab = DecayedMoments(decay=0.1)
        ab.merge(a)
        ab.merge(b)
        ba = DecayedMoments(decay=0.1)
        ba.merge(b)
        ba.merge(a)
        assert ab.n == pytest.approx(ba.n, rel=1e-12)
        assert ab.mean == pytest.approx(ba.mean, rel=1e-12)
        assert ab.m2 == pytest.approx(ba.m2, rel=1e-12)
        assert ab.t_ref == ba.t_ref

    def test_layout_mismatch_raises(self):
        with pytest.raises(ValueError, match="layouts"):
            SlidingCountLadder(0.1, window=10.0).merge(
                SlidingCountLadder(0.1, window=20.0))
        with pytest.raises(ValueError, match="parameters"):
            DecayedTopK(8, decay=0.1).merge(DecayedTopK(8, decay=0.2))
        with pytest.raises(ValueError, match="decay"):
            DecayedMoments(0.1).merge(DecayedMoments(0.2))
        with pytest.raises(ValueError, match="layouts"):
            WindowedQuantileSketch(8, window=10.0).merge(
                WindowedQuantileSketch(8, window=20.0))


# ----------------------------------------------------------------------
# Windowing behaviour
# ----------------------------------------------------------------------
class TestWindowing:
    def test_ladder_memory_independent_of_stream_length(self):
        ladder = SlidingCountLadder(0.1, window=10.0)
        for k in range(50):
            ladder.update(np.linspace(k * 100.0, k * 100.0 + 99.0, 1000))
        assert ladder.total_events == 50_000
        assert ladder.window_counts().size <= ladder.window_bins
        # Buffer stays near the window size, not the 5000s stream span.
        assert ladder.counts.size <= 4 * ladder.window_bins
        assert ladder.nbytes < 16_000

    def test_ladder_evicts_and_counts(self):
        ladder = SlidingCountLadder(1.0, window=5.0)
        ladder.update([0.5, 1.5, 2.5])
        ladder.update([20.5])
        assert ladder.evicted_events == 3
        assert ladder.n_events == 1
        assert ladder.total_events == 4

    def test_ladder_straggler_behind_window_is_late(self):
        ladder = SlidingCountLadder(1.0, window=5.0)
        ladder.update([100.0])
        ladder.update([1.0])  # far behind the retained window
        assert ladder.late_events == 1
        assert ladder.n_events == 1

    def test_decayed_topk_ages_out_old_outlier(self):
        topk = DecayedTopK(32, decay=1.0, weight_floor=1e-6)
        topk.update([1e9], [0.0])  # ancient giant
        topk.update(np.full(16, 10.0), np.full(16, 100.0))
        # exp(-100) is far below the weight floor: the giant is gone.
        assert 1e9 not in topk.values
        assert topk.values.size == 16

    def test_quantile_panes_drop_old_data(self):
        sketch = WindowedQuantileSketch(128, window=10.0, n_panes=5)
        sketch.update(np.full(100, 1.0), np.full(100, 0.5))
        sketch.update(np.full(100, 9.0), np.full(100, 50.0))
        # The early pane of 1.0s fell out of the window.
        assert sketch.quantile(0.01) == 9.0
        assert sketch.n == 100

    def test_finite_window_requires_times(self):
        sketch = WindowedQuantileSketch(16, window=10.0)
        with pytest.raises(ValueError, match="times"):
            sketch.update([1.0, 2.0])
