"""Edge-case coverage for public APIs the main test files exercise only on
their happy paths."""

import math

import numpy as np
import pytest

from repro.distributions import (
    DiscretePareto,
    EmpiricalDistribution,
    Exponential,
    Pareto,
)
from repro.selfsim import CountProcess, default_levels, fgn_spectral_density
from repro.stats import (
    binomial_lower_tail,
    evaluate_interval,
    exponential_top_share,
    sign_bias_verdict,
)
from repro.traces import (
    ConnectionRecord,
    ConnectionTrace,
    PacketTrace,
    lookup,
)
from repro.utils import aggregate, bin_counts


class TestCountProcessEdges:
    def test_slice_outside_range_empty(self):
        cp = CountProcess(np.arange(10.0), 1.0)
        assert cp.slice_time(100.0, 200.0).n_bins == 0

    def test_slice_negative_start_clamped(self):
        cp = CountProcess(np.arange(10.0), 1.0)
        assert cp.slice_time(-5.0, 3.0).n_bins == 3

    def test_empty_process_stats(self):
        cp = CountProcess(np.zeros(0), 1.0)
        assert cp.mean == 0.0
        assert cp.variance == 0.0
        assert cp.total == 0.0

    def test_index_of_dispersion_zero_mean_raises(self):
        with pytest.raises(ValueError):
            CountProcess(np.zeros(5), 1.0).index_of_dispersion

    def test_default_levels_tiny_but_valid(self):
        lv = default_levels(100)
        assert lv[0] == 1 and lv[-1] == 2


class TestDistributionEdges:
    def test_exponential_ppf_extremes(self):
        d = Exponential(1.0)
        assert float(d.ppf(0.0)) == 0.0
        assert float(d.ppf(1.0)) == math.inf

    def test_pareto_ppf_one_is_inf(self):
        assert float(Pareto(1.0, 1.0).ppf(1.0)) == math.inf

    def test_pareto_variance_edge_shapes(self):
        assert Pareto(1.0, 2.0).variance == math.inf
        assert Pareto(1.0, 2.1).variance < math.inf

    def test_empirical_linear_interp_cdf(self):
        d = EmpiricalDistribution([0.0, 1.0], [0.0, 10.0], log_interp=False)
        assert float(d.cdf(5.0)) == pytest.approx(0.5)
        assert float(d.cdf(-1.0)) == 0.0
        assert float(d.cdf(11.0)) == 1.0

    def test_empirical_from_samples_two_points(self):
        d = EmpiricalDistribution.from_samples([1.0, 3.0])
        assert float(d.ppf(0.5)) == pytest.approx(2.0)

    def test_discrete_pareto_ppf_zero(self):
        assert float(DiscretePareto().ppf(0.0)) == 0.0

    def test_fgn_spectrum_at_pi(self):
        f = fgn_spectral_density(np.array([np.pi]), 0.7)
        assert np.isfinite(f[0]) and f[0] > 0


class TestStatsEdges:
    def test_evaluate_interval_small_n(self):
        # 8 arrivals: minimum viable for the pipeline's default
        t = np.sort(np.random.default_rng(1).uniform(0, 100, 9))
        out = evaluate_interval(t)
        assert out.n_arrivals == 9

    def test_binomial_zero_trials(self):
        assert binomial_lower_tail(0, 0, 0.5) == pytest.approx(1.0)

    def test_sign_bias_single_observation(self):
        assert sign_bias_verdict([1]).label == ""

    def test_exponential_top_share_monotone(self):
        fs = np.linspace(0.001, 1.0, 50)
        ys = [exponential_top_share(f) for f in fs]
        assert all(b >= a for a, b in zip(ys, ys[1:]))


class TestTraceEdges:
    def test_protocol_mask_case_insensitive(self):
        tr = ConnectionTrace("t", [ConnectionRecord(0.0, 1.0, "TELNET")])
        assert tr.protocol_mask("telnet").sum() == 1

    def test_arrival_times_missing_protocol_empty(self):
        tr = ConnectionTrace("t", [ConnectionRecord(0.0, 1.0, "TELNET")])
        assert tr.arrival_times("WWW").size == 0

    def test_sessions_without_ids_empty(self):
        tr = ConnectionTrace("t", [ConnectionRecord(0.0, 1.0, "FTPDATA")])
        assert tr.sessions("FTPDATA") == {}

    def test_packet_trace_empty_duration(self):
        assert PacketTrace("p", []).duration == 0.0

    def test_packet_trace_stable_sort_preserves_ties(self):
        pt = PacketTrace("p", timestamps=[1.0, 1.0, 1.0],
                         connection_ids=[3, 1, 2])
        assert pt.connection_ids.tolist() == [3, 1, 2]

    def test_lookup_other(self):
        assert lookup("other").port == 0


class TestUtilsEdges:
    def test_bin_counts_event_at_final_edge_included(self):
        # numpy's histogram closes the last bin on the right
        counts = bin_counts([2.0], width=1.0, start=0.0, end=2.0)
        assert counts.tolist() == [0, 1]

    def test_bin_counts_event_beyond_end_excluded(self):
        counts = bin_counts([2.5], width=1.0, start=0.0, end=2.0)
        assert counts.sum() == 0

    def test_bin_counts_event_at_start_included(self):
        counts = bin_counts([0.0], width=1.0, start=0.0, end=2.0)
        assert counts[0] == 1

    def test_aggregate_exact_multiple(self):
        out = aggregate(np.arange(9.0), 3)
        assert out.tolist() == [1.0, 4.0, 7.0]

    def test_aggregate_preserves_dtype_as_float(self):
        out = aggregate(np.array([1, 2], dtype=int), 1)
        assert out.dtype == float


class TestCliEdges:
    def test_main_run_unknown_returns_2(self, capsys):
        from repro.cli import main

        assert main(["run", "not-an-experiment"]) == 2

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
