"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils import (
    require_in_range,
    require_nonnegative,
    require_positive,
    require_probability,
    require_sorted,
)


def test_require_positive_accepts():
    assert require_positive(0.5, "x") == 0.5


@pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
def test_require_positive_rejects(bad):
    with pytest.raises(ValueError):
        require_positive(bad, "x")


def test_require_nonnegative():
    assert require_nonnegative(0.0, "x") == 0.0
    with pytest.raises(ValueError):
        require_nonnegative(-0.1, "x")


def test_require_in_range_inclusive():
    assert require_in_range(1.0, "x", 0.0, 1.0) == 1.0


def test_require_in_range_exclusive():
    with pytest.raises(ValueError):
        require_in_range(1.0, "x", 0.0, 1.0, inclusive=False)


def test_require_probability():
    assert require_probability(0.95, "p") == 0.95
    with pytest.raises(ValueError):
        require_probability(1.2, "p")


def test_require_sorted_ok():
    out = require_sorted([1.0, 1.0, 2.0], "x")
    assert isinstance(out, np.ndarray)


def test_require_sorted_rejects_decreasing():
    with pytest.raises(ValueError):
        require_sorted([2.0, 1.0], "x")


def test_require_sorted_rejects_2d():
    with pytest.raises(ValueError):
        require_sorted(np.zeros((2, 2)), "x")
