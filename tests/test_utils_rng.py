"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils import as_rng, spawn_rngs


def test_as_rng_none_returns_generator():
    rng = as_rng(None)
    assert isinstance(rng, np.random.Generator)


def test_as_rng_int_is_reproducible():
    a = as_rng(42).random(5)
    b = as_rng(42).random(5)
    assert np.array_equal(a, b)


def test_as_rng_passthrough_identity():
    rng = np.random.default_rng(7)
    assert as_rng(rng) is rng


def test_as_rng_different_seeds_differ():
    assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))


def test_spawn_rngs_count_and_independence():
    rngs = spawn_rngs(3, 4)
    assert len(rngs) == 4
    draws = [r.random(8) for r in rngs]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(draws[i], draws[j])


def test_spawn_rngs_reproducible_from_int():
    a = [r.random(3) for r in spawn_rngs(11, 2)]
    b = [r.random(3) for r in spawn_rngs(11, 2)]
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_spawn_rngs_from_generator():
    rngs = spawn_rngs(np.random.default_rng(5), 3)
    assert len(rngs) == 3
    assert all(isinstance(r, np.random.Generator) for r in rngs)


def test_spawn_rngs_zero():
    assert spawn_rngs(1, 0) == []


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(1, -1)
