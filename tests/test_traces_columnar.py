"""Columnar data-plane tests: tie order, sorted fast path, interning,
bit-for-bit write/read identity, and columnar-vs-record synthesis."""

import gzip
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ftp import FTP_PROTOCOL_TABLE, FtpSessionModel
from repro.core.fulltel import FullTelModel
from repro.stream.reader import iter_trace_batches
from repro.traces import (
    ConnectionRecord,
    ConnectionTrace,
    Direction,
    PacketRecord,
    PacketTrace,
    read_connection_trace,
    read_packet_trace,
    write_connection_trace,
    write_packet_trace,
)
from repro.traces.columns import (
    MAX_PROTOCOLS,
    PROTOCOL_CODE_DTYPE,
    concat_packet_batches,
    decode_protocols,
    encode_protocols,
    protocol_code,
    stable_time_order,
)

PROTOS = ["TELNET", "FTP", "FTPDATA", "SMTP", "NNTP", "OTHER"]


def _conn_trace_equal(a, b):
    return (np.array_equal(a.start_times, b.start_times)
            and np.array_equal(a.durations, b.durations)
            and np.array_equal(a.protocols, b.protocols)
            and np.array_equal(a.bytes_orig, b.bytes_orig)
            and np.array_equal(a.bytes_resp, b.bytes_resp)
            and np.array_equal(a.orig_hosts, b.orig_hosts)
            and np.array_equal(a.resp_hosts, b.resp_hosts)
            and np.array_equal(a.session_ids, b.session_ids))


def _pkt_trace_equal(a, b):
    return (np.array_equal(a.timestamps, b.timestamps)
            and np.array_equal(a.protocols, b.protocols)
            and np.array_equal(a.connection_ids, b.connection_ids)
            and np.array_equal(a.directions, b.directions)
            and np.array_equal(a.sizes, b.sizes)
            and np.array_equal(a.user_data, b.user_data))


class TestTieOrder:
    """Record-list and from_arrays construction must order duplicate
    timestamps identically (both sort stably on the time column)."""

    def test_connection_ties_keep_input_order(self):
        # Three ties at t=1.0 interleaved with ties at t=0.5; the payload
        # (bytes_orig) tags each record's input position.
        times = [1.0, 0.5, 1.0, 0.5, 1.0]
        recs = [
            ConnectionRecord(t, 1.0, "FTP", i, 0, 0, 0, None)
            for i, t in enumerate(times)
        ]
        via_records = ConnectionTrace("x", recs)
        via_arrays = ConnectionTrace.from_arrays(
            "x",
            start_times=np.array(times),
            durations=np.ones(5),
            protocols=np.array(["FTP"] * 5, dtype=object),
            bytes_orig=np.arange(5),
        )
        assert _conn_trace_equal(via_records, via_arrays)
        assert via_records.bytes_orig.tolist() == [1, 3, 0, 2, 4]

    def test_packet_ties_keep_input_order(self):
        times = [2.0, 2.0, 1.0, 2.0, 1.0]
        pkts = [
            PacketRecord(t, "TELNET", i, Direction.ORIGINATOR, 1, True)
            for i, t in enumerate(times)
        ]
        via_records = PacketTrace("x", pkts)
        via_arrays = PacketTrace.from_arrays(
            "x",
            timestamps=np.array(times),
            protocols=np.array(["TELNET"] * 5, dtype=object),
            connection_ids=np.arange(5),
        )
        assert _pkt_trace_equal(via_records, via_arrays)
        assert via_records.connection_ids.tolist() == [2, 4, 0, 1, 3]

    @given(st.lists(st.sampled_from([0.0, 1.0, 2.0]), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_tie_order_property(self, times):
        """Heavily tied random time columns: both paths agree exactly."""
        recs = [
            ConnectionRecord(t, 1.0, "FTP", i, 0, 0, 0, None)
            for i, t in enumerate(times)
        ]
        via_records = ConnectionTrace("x", recs)
        via_arrays = ConnectionTrace.from_arrays(
            "x",
            start_times=np.array(times),
            durations=np.ones(len(times)),
            protocols=np.array(["FTP"] * len(times), dtype=object),
            bytes_orig=np.arange(len(times)),
        )
        assert _conn_trace_equal(via_records, via_arrays)


class TestSortedFastPath:
    def test_sorted_returns_none(self):
        assert stable_time_order(np.array([0.0, 1.0, 1.0, 2.0])) is None
        assert stable_time_order(np.zeros(0)) is None
        assert stable_time_order(np.array([5.0])) is None

    def test_unsorted_returns_stable_permutation(self):
        t = np.array([1.0, 0.0, 1.0, 0.0])
        order = stable_time_order(t)
        assert order is not None
        assert order.tolist() == [1, 3, 0, 2]

    def test_sorted_input_is_not_copied(self):
        """Already-sorted float64 input skips the argsort gather: the trace
        stores the caller's array itself."""
        ts = np.arange(100, dtype=float)
        trace = PacketTrace.from_arrays("x", timestamps=ts)
        assert trace.timestamps is ts

    def test_unsorted_input_gets_sorted(self):
        trace = PacketTrace.from_arrays(
            "x", timestamps=np.array([3.0, 1.0, 2.0]),
            sizes=np.array([30, 10, 20]),
        )
        assert trace.timestamps.tolist() == [1.0, 2.0, 3.0]
        assert trace.sizes.tolist() == [10, 20, 30]


class TestInterning:
    def test_codes_and_table(self):
        codes, table = encode_protocols(
            np.array(["SMTP", "FTP", "SMTP"], dtype=object)
        )
        assert codes.dtype == PROTOCOL_CODE_DTYPE
        assert table.tolist() == ["FTP", "SMTP"]  # sorted unique
        assert codes.tolist() == [1, 0, 1]
        assert decode_protocols(codes, table).tolist() == ["SMTP", "FTP", "SMTP"]

    def test_code_lookup(self):
        _, table = encode_protocols(np.array(["FTP", "SMTP"], dtype=object))
        assert protocol_code(table, "SMTP") == 1
        assert protocol_code(table, "NOPE") == -1

    def test_too_many_protocols_raises(self):
        names = np.array([f"P{i:03d}" for i in range(MAX_PROTOCOLS + 1)],
                         dtype=object)
        with pytest.raises(ValueError, match="int8"):
            encode_protocols(names)

    def test_mask_matches_string_compare(self):
        rng = np.random.default_rng(0)
        protos = np.array(PROTOS, dtype=object)[rng.integers(0, 6, 1000)]
        trace = ConnectionTrace.from_arrays(
            "x", start_times=np.arange(1000.0), protocols=protos
        )
        for name in PROTOS:
            assert np.array_equal(trace.protocol_mask(name),
                                  trace.protocols == name)
        assert not trace.protocol_mask("ABSENT").any()

    def test_code_column_is_8x_smaller(self):
        trace = ConnectionTrace.from_arrays(
            "x", start_times=np.arange(1000.0),
            protocols=np.array(["TELNET"] * 1000, dtype=object),
        )
        object_column_bytes = 1000 * np.dtype(object).itemsize
        assert trace.protocol_codes.nbytes * 8 <= object_column_bytes

    def test_subset_shares_table(self):
        trace = ConnectionTrace.from_arrays(
            "x", start_times=np.arange(10.0),
            protocols=np.array(PROTOS[:5] * 2, dtype=object),
        )
        sub = trace.subset(trace.start_times < 5.0, "sub")
        assert sub.protocol_table is trace.protocol_table
        assert np.array_equal(sub.protocols, trace.protocols[:5])


def _pkt_strategy():
    return st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=2e9, allow_nan=False,
                      allow_infinity=False),
            st.sampled_from(PROTOS),
            st.integers(min_value=-1, max_value=10**9),
            st.booleans(),
            st.integers(min_value=0, max_value=10**6),
            st.booleans(),
        ),
        max_size=30,
    )


def _conn_strategy():
    return st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=2e9, allow_nan=False,
                      allow_infinity=False),
            st.floats(min_value=0, max_value=1e6, allow_nan=False,
                      allow_infinity=False),
            st.sampled_from(PROTOS),
            st.integers(min_value=0, max_value=10**12),
            st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
        ),
        max_size=30,
    )


class TestWriteReadIdentity:
    """write ∘ read is the identity, bit for bit, including ``.gz``."""

    @given(rows=_pkt_strategy(), gz=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_packet_identity(self, rows, gz):
        pkts = [
            PacketRecord(t, proto, cid,
                         Direction.RESPONDER if d else Direction.ORIGINATOR,
                         size, ud)
            for t, proto, cid, d, size, ud in rows
        ]
        ext = "txt.gz" if gz else "txt"
        with tempfile.TemporaryDirectory() as tmp:
            first = f"{tmp}/a.{ext}"
            second = f"{tmp}/b.{ext}"
            write_packet_trace(PacketTrace("x", pkts), first)
            back = read_packet_trace(first)
            write_packet_trace(back, second)
            raw = (gzip.decompress if gz else bytes)
            assert (raw(open(first, "rb").read())
                    == raw(open(second, "rb").read()))
        again = [back.record(i) for i in range(len(back))]
        assert sorted(pkts, key=lambda p: p.timestamp) == again

    @given(rows=_conn_strategy(), gz=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_connection_identity(self, rows, gz):
        recs = [
            ConnectionRecord(t, d, proto, b, 2 * b, 1, 2, sid)
            for t, d, proto, b, sid in rows
        ]
        ext = "txt.gz" if gz else "txt"
        with tempfile.TemporaryDirectory() as tmp:
            first = f"{tmp}/a.{ext}"
            second = f"{tmp}/b.{ext}"
            write_connection_trace(ConnectionTrace("x", recs), first)
            back = read_connection_trace(first)
            write_connection_trace(back, second)
            raw = (gzip.decompress if gz else bytes)
            assert (raw(open(first, "rb").read())
                    == raw(open(second, "rb").read()))
        again = [back.record(i) for i in range(len(back))]
        assert sorted(recs, key=lambda r: r.start_time) == again

    def test_session_id_none_roundtrips(self, tmp_path):
        recs = [ConnectionRecord(0.0, 1.0, "FTP", 1, 2, 3, 4, None)]
        path = tmp_path / "c.txt"
        write_connection_trace(ConnectionTrace("x", recs), path)
        assert read_connection_trace(path).record(0).session_id is None


class TestReadMatchesStreamReader:
    def _synth(self, n=5000, seed=3):
        rng = np.random.default_rng(seed)
        return PacketTrace.from_arrays(
            "synth",
            timestamps=np.cumsum(rng.exponential(0.01, n)),
            protocols=np.array(PROTOS, dtype=object)[rng.integers(0, 6, n)],
            connection_ids=rng.integers(0, 500, n),
            directions=rng.integers(0, 2, n).astype(np.int8),
            sizes=rng.integers(1, 1460, n),
            user_data=rng.random(n) < 0.5,
        )

    @pytest.mark.parametrize("ext", ["txt", "txt.gz"])
    def test_whole_file_read_equals_batched_stream(self, tmp_path, ext):
        path = tmp_path / f"p.{ext}"
        write_packet_trace(self._synth(), path)
        trace = read_packet_trace(path)
        batch = concat_packet_batches(list(iter_trace_batches(path, "packet")))
        assert np.array_equal(trace.timestamps, batch.timestamps)
        assert np.array_equal(trace.protocols, batch.protocols)
        assert np.array_equal(trace.connection_ids, batch.connection_ids)
        assert np.array_equal(trace.directions, batch.directions)
        assert np.array_equal(trace.sizes, batch.sizes)
        assert np.array_equal(trace.user_data, batch.user_data)

    def test_long_protocol_token_falls_back(self, tmp_path):
        """Names past the fast path's fixed field width still read exactly
        (via the width-agnostic batched path)."""
        long_name = "X" * 80
        path = tmp_path / "p.txt"
        path.write_text(
            "#repro-packets v1\n"
            f"0.5 {long_name} 1 0 99 1\n"
            "1.5 TELNET 2 1 10 0\n"
        )
        trace = read_packet_trace(path)
        assert trace.protocols.tolist() == [long_name, "TELNET"]
        assert trace.sizes.tolist() == [99, 10]


class TestColumnarSynthesisEquivalence:
    """The columnar source paths reproduce the frozen record paths bit for
    bit on the same RNG streams."""

    def test_ftp_columns_match_record_loop(self):
        model = FtpSessionModel(sessions_per_hour=120.0)
        records = model.synthesize(3600.0, seed=11, batch=False)
        via_records = ConnectionTrace("ftp", records)
        cols = model.synthesize_columns(3600.0, seed=11)
        via_columns = ConnectionTrace.from_arrays(
            "ftp",
            start_times=cols.start_times,
            durations=cols.durations,
            protocols=cols.protocols,
            bytes_orig=cols.bytes_orig,
            bytes_resp=cols.bytes_resp,
            orig_hosts=cols.orig_hosts,
            resp_hosts=cols.resp_hosts,
            session_ids=cols.session_ids,
        )
        assert len(via_records) > 0
        assert _conn_trace_equal(via_records, via_columns)

    def test_ftp_synthesize_trace_matches_record_loop(self):
        model = FtpSessionModel(sessions_per_hour=120.0)
        direct = model.synthesize_trace(3600.0, seed=7, name="ftp")
        via_records = ConnectionTrace(
            "ftp", model.synthesize(3600.0, seed=7, batch=False)
        )
        assert _conn_trace_equal(direct, via_records)
        assert np.array_equal(direct.protocol_table, FTP_PROTOCOL_TABLE)

    def test_fulltel_batch_matches_record_loop(self):
        model = FullTelModel(connections_per_hour=300.0)
        batched = model.synthesize(1800.0, seed=5, batch=True)
        looped = model.synthesize(1800.0, seed=5, batch=False)
        assert len(batched) > 0
        assert _pkt_trace_equal(batched, looped)
