"""Tests for FTPDATA burst coalescing and the FTP session model (Section VI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BURST_SPACING_SECONDS,
    FtpSessionModel,
    burst_concentration,
    burst_tail_summary,
    coalesce_bursts,
    intra_session_spacings,
    trace_bursts,
)
from repro.kernels.reference import coalesce_bursts_loop
from repro.traces import ConnectionTrace


class TestCoalesceRegression:
    """The vectorized gap scan must reproduce the historical per-connection
    loop's burst boundaries exactly, fast path included."""

    def test_multi_session_trace_boundaries_unchanged(self):
        model = FtpSessionModel(sessions_per_hour=150.0)
        trace = ConnectionTrace("ftp", model.synthesize(6 * 3600.0, seed=13))
        n_checked = 0
        for sid, rows in trace.sessions("FTPDATA").items():
            s = trace.start_times[rows]
            d = trace.durations[rows]
            b = trace.bytes_resp[rows] + trace.bytes_orig[rows]
            assert coalesce_bursts(s, d, b, session_id=sid) == \
                coalesce_bursts_loop(s, d, b, BURST_SPACING_SECONDS, sid)
            n_checked += 1
        assert n_checked > 50  # a real multi-session trace, not a toy

    def test_single_burst_fast_path_matches_loop(self):
        s = np.array([0.0, 1.0, 3.0, 6.5])
        d = np.array([0.5, 1.5, 2.0, 0.2])
        b = np.array([100, 200, 300, 400])
        got = coalesce_bursts(s, d, b, session_id=9)
        assert got == coalesce_bursts_loop(s, d, b, BURST_SPACING_SECONDS, 9)
        assert len(got) == 1


class TestCoalesceBursts:
    def test_single_connection_single_burst(self):
        bursts = coalesce_bursts([0.0], [2.0], [100])
        assert len(bursts) == 1
        assert bursts[0].n_connections == 1
        assert bursts[0].total_bytes == 100

    def test_close_connections_merge(self):
        # conn ends at 2.0; next starts at 4.0 -> spacing 2.0 <= 4 s
        bursts = coalesce_bursts([0.0, 4.0], [2.0, 1.0], [10, 20])
        assert len(bursts) == 1
        assert bursts[0].n_connections == 2
        assert bursts[0].total_bytes == 30

    def test_distant_connections_split(self):
        # spacing = 10 - 2 = 8 > 4 s
        bursts = coalesce_bursts([0.0, 10.0], [2.0, 1.0], [10, 20])
        assert len(bursts) == 2

    def test_boundary_spacing_exactly_cutoff(self):
        # spacing exactly 4.0 -> same burst (<= rule)
        bursts = coalesce_bursts([0.0, 5.0], [1.0, 1.0], [1, 1])
        assert len(bursts) == 1

    def test_unsorted_input_handled(self):
        bursts = coalesce_bursts([10.0, 0.0], [1.0, 2.0], [5, 7])
        assert len(bursts) == 2
        assert bursts[0].start_time == 0.0

    def test_burst_times(self):
        bursts = coalesce_bursts([0.0, 3.0], [2.0, 4.0], [1, 1])
        assert bursts[0].start_time == 0.0
        assert bursts[0].end_time == 7.0
        assert bursts[0].duration == 7.0

    def test_empty(self):
        assert coalesce_bursts([], [], []) == []

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            coalesce_bursts([0.0], [1.0, 2.0], [1])

    def test_alternate_cutoff_footnote(self):
        """The paper: a 2 s cutoff gives 'virtually identical results' —
        here: it can only split, never merge, relative to 4 s."""
        starts = np.array([0.0, 2.5, 9.0, 12.0])
        durs = np.ones(4)
        sizes = np.ones(4, dtype=int)
        b4 = coalesce_bursts(starts, durs, sizes, spacing=4.0)
        b2 = coalesce_bursts(starts, durs, sizes, spacing=2.0)
        assert len(b2) >= len(b4)

    @given(
        st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=40),
        st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_invariants(self, starts, spacing):
        durs = np.ones(len(starts))
        sizes = np.ones(len(starts), dtype=int)
        bursts = coalesce_bursts(starts, durs, sizes, spacing=spacing)
        # every connection lands in exactly one burst
        assert sum(b.n_connections for b in bursts) == len(starts)
        assert sum(b.total_bytes for b in bursts) == len(starts)
        # bursts are time-ordered and non-overlapping in start
        ss = [b.start_time for b in bursts]
        assert ss == sorted(ss)


class TestSessionModel:
    @pytest.fixture(scope="class")
    def records(self):
        model = FtpSessionModel(sessions_per_hour=120.0)
        return model.synthesize(6 * 3600.0, seed=1)

    def test_contains_both_protocols(self, records):
        protos = {r.protocol for r in records}
        assert protos == {"FTP", "FTPDATA"}

    def test_every_data_connection_has_session(self, records):
        for r in records:
            if r.protocol == "FTPDATA":
                assert r.session_id is not None

    def test_sessions_have_control_connection(self, records):
        control = {r.session_id for r in records if r.protocol == "FTP"}
        data = {r.session_id for r in records if r.protocol == "FTPDATA"}
        assert data <= control

    def test_trace_bursts_roundtrip(self, records):
        trace = ConnectionTrace("ftp", records)
        bursts = trace_bursts(trace)
        assert len(bursts) >= 1
        total_data = trace.total_bytes("FTPDATA")
        assert sum(b.total_bytes for b in bursts) == total_data

    def test_heavy_tailed_burst_sizes(self):
        """The headline: top 0.5% of bursts holds far more than 3%
        (the exponential benchmark) of the bytes."""
        model = FtpSessionModel(sessions_per_hour=400.0)
        records = model.synthesize(24 * 3600.0, seed=2)
        bursts = trace_bursts(ConnectionTrace("ftp", records))
        summary = burst_tail_summary(bursts)
        assert summary.n_bursts > 1000
        assert summary.share_top_half_percent > 0.10
        assert summary.dominated_by_tail()

    def test_tail_shape_in_paper_range(self):
        model = FtpSessionModel(sessions_per_hour=400.0)
        records = model.synthesize(24 * 3600.0, seed=3)
        bursts = trace_bursts(ConnectionTrace("ftp", records))
        shape = burst_tail_summary(bursts).tail_shape
        assert shape is not None
        assert 0.7 < shape < 1.7  # paper fit: 0.9 <= beta <= 1.4

    def test_spacing_distribution_bimodal_anchor(self):
        """Fig. 8: intra-burst spacings sit below the 4 s cutoff,
        inter-burst gaps above — both modes must be present."""
        model = FtpSessionModel(sessions_per_hour=200.0)
        records = model.synthesize(12 * 3600.0, seed=4)
        spacings = intra_session_spacings(ConnectionTrace("ftp", records))
        assert spacings.size > 100
        below = np.mean(spacings <= BURST_SPACING_SECONDS)
        assert 0.15 < below < 0.95
        assert np.quantile(spacings, 0.95) > 10.0

    def test_concentration_curve(self, records):
        bursts = trace_bursts(ConnectionTrace("ftp", records))
        curve = burst_concentration(bursts)
        assert curve.share_at(1.0) == pytest.approx(1.0)

    def test_session_starts_override(self):
        model = FtpSessionModel(sessions_per_hour=10.0)
        recs = model.synthesize(3600.0, seed=5,
                                session_starts=np.array([100.0, 200.0]))
        sessions = {r.session_id for r in recs}
        assert sessions == {0, 1}

    def test_burst_summary_empty_raises(self):
        with pytest.raises(ValueError):
            burst_tail_summary([])
