"""Property tests for the mergeable streaming sketches.

The load-bearing claims (see ``repro.stream.sketches``):

* integer sketches (CountLadder bins, TopK order statistics, Log2Histogram
  buckets) are *bit-identical* to the batch path under any partition of the
  input;
* QuantileSketch conserves total weight exactly and keeps every rank query
  within its self-reported ``max_rank_error``;
* StreamingMoments merges match single-pass numpy moments to float
  tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.pareto import hill_estimator, tail_fit
from repro.selfsim.counts import CountProcess
from repro.selfsim.variance_time import variance_time_curve
from repro.stream import (
    CountLadder,
    Log2Histogram,
    QuantileSketch,
    StreamingMoments,
    TopK,
)
from repro.utils.binning import bin_counts


def _split(arr, cuts):
    """Partition ``arr`` at the (sorted, in-range) cut points."""
    pieces = np.split(arr, sorted(set(cuts)))
    return [p for p in pieces]


# ----------------------------------------------------------------------
# StreamingMoments
# ----------------------------------------------------------------------
class TestStreamingMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.exponential(2.0, 10_000)
        m = StreamingMoments()
        m.update(x)
        assert m.n == x.size
        assert m.mean == pytest.approx(np.mean(x), rel=1e-12)
        assert m.variance == pytest.approx(np.var(x), rel=1e-12)
        assert m.min == x.min() and m.max == x.max()
        assert m.total == pytest.approx(x.sum(), rel=1e-12)

    @given(st.lists(st.integers(1, 997), min_size=0, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_merge_any_partition(self, cuts):
        rng = np.random.default_rng(7)
        x = rng.lognormal(1.0, 1.5, 1000)
        merged = StreamingMoments()
        for piece in _split(x, cuts):
            part = StreamingMoments()
            part.update(piece)
            merged.merge(part)
        assert merged.n == x.size
        assert merged.mean == pytest.approx(np.mean(x), rel=1e-10)
        assert merged.variance == pytest.approx(np.var(x), rel=1e-9)

    def test_empty_updates_are_noops(self):
        m = StreamingMoments()
        m.update([])
        m.merge(StreamingMoments())
        assert m.n == 0 and m.variance == 0.0


# ----------------------------------------------------------------------
# Log2Histogram
# ----------------------------------------------------------------------
class TestLog2Histogram:
    def test_buckets(self):
        h = Log2Histogram()
        h.update([0.0, 1.0, 1.5, 2.0, 3.9, 4.0, 1024.0])
        assert h.zeros == 1
        got = dict(h.nonzero_buckets())
        assert got == {0: 2, 1: 2, 2: 1, 10: 1}
        assert h.n == 7

    def test_merge_is_exact(self):
        rng = np.random.default_rng(3)
        x = rng.integers(1, 1 << 20, 5000).astype(float)
        whole = Log2Histogram()
        whole.update(x)
        merged = Log2Histogram()
        for piece in _split(x, [100, 2500, 4000]):
            part = Log2Histogram()
            part.update(piece)
            merged.merge(part)
        assert np.array_equal(whole.counts, merged.counts)
        assert whole.zeros == merged.zeros

    def test_zero_and_negative_go_to_zeros_counter(self):
        # Pinned convention: non-positive values never enter a log bucket.
        h = Log2Histogram()
        h.update([0.0, -1.0, -1e9, 2.0])
        assert h.zeros == 3
        assert dict(h.nonzero_buckets()) == {1: 1}
        assert h.n == 4

    def test_sub_unity_positives_clamp_into_bucket_zero(self):
        # Pinned convention: 0 < v < 1 shares bucket 0 with 1 <= v < 2;
        # the histogram does not resolve below one unit.
        h = Log2Histogram()
        h.update([0.01, 0.5, 0.999, 1.0, 1.999])
        assert h.zeros == 0
        assert dict(h.nonzero_buckets()) == {0: 5}

    def test_oversized_values_clamp_into_last_bucket(self):
        h = Log2Histogram(max_exponent=4)
        h.update([2.0 ** 4, 2.0 ** 9, 1e30])
        assert dict(h.nonzero_buckets()) == {3: 3}


# ----------------------------------------------------------------------
# TopK tail reservoir
# ----------------------------------------------------------------------
class TestTopK:
    def test_tail_samples_exact(self):
        rng = np.random.default_rng(1)
        x = rng.pareto(1.2, 2000) + 1.0
        t = TopK(64)
        t.update(x)
        assert t.n_seen == 2000
        assert np.array_equal(t.tail_samples(64), np.sort(x)[-64:])

    @given(st.lists(st.integers(1, 1999), min_size=0, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_merge_any_partition_bit_identical(self, cuts):
        rng = np.random.default_rng(11)
        x = rng.pareto(1.05, 2000) + 1.0
        whole = TopK(50)
        whole.update(x)
        merged = TopK(50)
        for piece in _split(x, cuts):
            part = TopK(50)
            part.update(piece)
            merged.merge(part)
        assert merged.n_seen == whole.n_seen == x.size
        assert np.array_equal(merged.values, whole.values)

    def test_hill_matches_batch_estimator(self):
        rng = np.random.default_rng(2)
        x = rng.pareto(1.5, 5000) + 0.1
        t = TopK(200)
        t.update(x)
        for k in (1, 10, 150, 199):
            assert t.hill(k) == hill_estimator(x, k)

    def test_tail_fit_matches_batch_bit_for_bit(self):
        rng = np.random.default_rng(5)
        x = rng.pareto(1.1, 4000) + 0.05
        t = TopK(300)
        t.update(x)
        loc, shape, k = t.tail_fit(0.05)
        batch = tail_fit(x, 0.05)
        assert k == 200
        assert loc == batch.location
        assert shape == batch.shape

    def test_capacity_too_small_raises(self):
        t = TopK(10)
        t.update(np.arange(1.0, 101.0))
        with pytest.raises(ValueError, match="capacity"):
            t.hill(10)  # needs the 11th largest as threshold
        assert t.max_tail_fraction() == pytest.approx(9 / 100)
        # ... but the largest exactly-coverable fraction works.
        t.tail_fit(t.max_tail_fraction())

    def test_infeasible_fraction_error_names_feasible_one(self):
        # Streaming callers degrade on this message instead of guessing.
        t = TopK(10)
        t.update(np.arange(1.0, 101.0))
        with pytest.raises(ValueError,
                           match="largest feasible tail fraction is 0.09"):
            t.tail_fit(0.5)

    def test_max_tail_fraction_degenerate_reservoirs(self):
        assert TopK(10).max_tail_fraction() == 0.0
        t = TopK(10)
        t.update([3.0])
        assert t.max_tail_fraction() == 0.0  # one value: no threshold


# ----------------------------------------------------------------------
# QuantileSketch
# ----------------------------------------------------------------------
class TestQuantileSketch:
    def test_small_input_is_exact(self):
        q = QuantileSketch(capacity=64)
        x = np.arange(50.0)
        q.update(x)
        assert q.max_rank_error() == 0
        assert q.quantile(0.0) == 0.0
        assert q.quantile(1.0) == 49.0
        assert q.quantile(0.5) == 24.0

    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([8, 64, 256]),
        st.integers(100, 5000),
    )
    @settings(max_examples=25, deadline=None)
    def test_weight_conserved_and_error_bounded(self, seed, cap, n):
        rng = np.random.default_rng(seed)
        x = rng.lognormal(0.0, 2.0, n)
        sk = QuantileSketch(capacity=cap)
        sk.update(x)
        assert sk.total_weight == sk.n == n
        xs = np.sort(x)
        bound = sk.max_rank_error()
        for q in (0.01, 0.25, 0.5, 0.9, 0.99):
            v = sk.quantile(q)
            # rank range of v in the true sample vs the target rank
            lo = np.searchsorted(xs, v, side="left")
            hi = np.searchsorted(xs, v, side="right")
            target = q * n
            err = max(0.0, max(lo - target, target - hi))
            assert err <= bound + 1, (q, err, bound)

    @given(st.lists(st.integers(1, 2999), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_merge_conserves_weight_and_bound(self, cuts):
        rng = np.random.default_rng(13)
        x = rng.exponential(1.0, 3000)
        merged = QuantileSketch(capacity=128)
        for piece in _split(x, cuts):
            part = QuantileSketch(capacity=128)
            part.update(piece)
            merged.merge(part)
        assert merged.total_weight == merged.n == x.size
        xs = np.sort(x)
        bound = merged.max_rank_error()
        for q in (0.1, 0.5, 0.9):
            v = merged.quantile(q)
            lo = np.searchsorted(xs, v, side="left")
            hi = np.searchsorted(xs, v, side="right")
            target = q * x.size
            assert max(0.0, max(lo - target, target - hi)) <= bound + 1

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 1, 10_000)
        a, b = QuantileSketch(64), QuantileSketch(64)
        a.update(x)
        b.update(x)
        assert a.quantiles([0.1, 0.5, 0.9]).tolist() == \
            b.quantiles([0.1, 0.5, 0.9]).tolist()

    def test_memory_bounded(self):
        sk = QuantileSketch(capacity=64)
        rng = np.random.default_rng(6)
        sizes = []
        for _ in range(5):
            sk.update(rng.random(100_000))
            sizes.append(sk.nbytes)
        # levels grow ~log(n); footprint must stay tiny vs the input
        assert sizes[-1] < 64 * 8 * 40

    def test_capacity_mismatch_merge_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            QuantileSketch(8).merge(QuantileSketch(16))

    def test_cdf(self):
        sk = QuantileSketch(256)
        sk.update(np.arange(100.0))
        assert sk.cdf(49.0) == pytest.approx(0.5, abs=0.02)


# ----------------------------------------------------------------------
# CountLadder
# ----------------------------------------------------------------------
def _times_strategy():
    return st.lists(
        st.floats(min_value=0.0, max_value=500.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=300,
    )


class TestCountLadderWindowed:
    def test_matches_bin_counts(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 100, 5000))
        ladder = CountLadder(0.5, start=0.0, end=100.0)
        ladder.update(times)
        expected = bin_counts(times, 0.5, start=0.0, end=100.0)
        assert np.array_equal(ladder.finalize(), expected)

    def test_event_at_final_edge_included(self):
        ladder = CountLadder(1.0, start=0.0, end=10.0)
        ladder.update([0.0, 9.5, 10.0])  # 10.0 sits on the closed last edge
        counts = ladder.finalize()
        assert counts[-1] == 2
        assert counts.sum() == 3

    def test_out_of_window_dropped(self):
        ladder = CountLadder(1.0, start=5.0, end=10.0)
        ladder.update([0.0, 4.999, 5.0, 7.5, 10.0, 10.001])
        assert ladder.finalize().sum() == 3
        assert ladder.n_events == 3


class TestCountLadderOpen:
    @given(_times_strategy())
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_to_from_times(self, times):
        times = np.sort(np.asarray(times))
        ladder = CountLadder(0.37)
        ladder.update(times)
        expected = CountProcess.from_times(times, 0.37, start=0.0).counts
        assert np.array_equal(ladder.finalize(), expected)

    @given(_times_strategy(), st.lists(st.integers(1, 299), max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_partition_invariance(self, times, cuts):
        times = np.sort(np.asarray(times))
        whole = CountLadder(0.37)
        whole.update(times)
        merged = CountLadder(0.37)
        for piece in _split(times, [c for c in cuts if c < times.size]):
            part = CountLadder(0.37)
            part.update(piece)
            merged.merge(part)
        assert np.array_equal(whole.finalize(), merged.finalize())

    def test_event_exactly_on_final_edge(self):
        # max(times) is a whole multiple of the width: the batch path's
        # final bin is closed on the right and keeps that event.
        times = np.array([0.25, 1.0, 3.0, 4.0])
        ladder = CountLadder(1.0)
        ladder.update(times)
        expected = CountProcess.from_times(times, 1.0, start=0.0).counts
        assert np.array_equal(ladder.finalize(), expected)
        assert ladder.finalize().sum() == 4

    def test_partial_trailing_bin_dropped(self):
        # Batch semantics: whole bins only; 4.5 lies past the last edge.
        times = np.array([0.25, 1.0, 3.0, 4.5])
        ladder = CountLadder(1.0)
        ladder.update(times)
        expected = CountProcess.from_times(times, 1.0, start=0.0).counts
        assert np.array_equal(ladder.finalize(), expected)
        assert ladder.finalize().sum() == 3

    def test_weighted_matches_byte_process(self):
        rng = np.random.default_rng(9)
        times = np.sort(rng.uniform(0, 50, 2000))
        sizes = rng.integers(40, 1500, 2000).astype(float)
        ladder = CountLadder(0.5, weighted=True)
        ladder.update(times, sizes)
        edges_n = ladder.finalize().size
        expected, _ = np.histogram(
            times, bins=0.5 * np.arange(edges_n + 1), weights=sizes
        )
        got = ladder.finalize()[:edges_n]
        assert np.allclose(got[:-1], expected[:-1])
        assert got.sum() <= sizes.sum()

    def test_growth_preserves_counts(self):
        ladder = CountLadder(0.01)  # starts with 64 bins, must grow a lot
        t1 = np.linspace(0.0, 0.5, 100)
        t2 = np.linspace(100.0, 200.0, 100)
        ladder.update(t1)
        ladder.update(t2)
        both = np.concatenate([t1, t2])
        expected = CountProcess.from_times(both, 0.01, start=0.0).counts
        assert np.array_equal(ladder.finalize(), expected)

    def test_ladder_levels_match_aggregated(self):
        rng = np.random.default_rng(21)
        times = np.sort(rng.uniform(0, 300, 20_000))
        ladder = CountLadder(0.1)
        ladder.update(times)
        levels = ladder.ladder()
        base = ladder.as_count_process()
        assert np.array_equal(levels[0].counts, base.counts)
        for l, proc in enumerate(levels[1:], start=1):
            assert np.array_equal(proc.counts, base.aggregated(2 ** l).counts)

    def test_variance_time_matches_batch(self):
        rng = np.random.default_rng(22)
        times = np.sort(rng.uniform(0, 300, 30_000))
        ladder = CountLadder(0.1)
        ladder.update(times)
        streamed = ladder.variance_time()
        batch = variance_time_curve(
            CountProcess.from_times(times, 0.1, start=0.0)
        )
        assert np.array_equal(streamed.levels, batch.levels)
        assert np.array_equal(streamed.variances, batch.variances)

    def test_layout_mismatch_merge_raises(self):
        with pytest.raises(ValueError, match="layout"):
            CountLadder(0.1).merge(CountLadder(0.2))

    def test_empty_finalize(self):
        assert CountLadder(1.0).finalize().size == 0

    def test_memory_independent_of_event_count(self):
        # Same window, 10x the events: footprint unchanged.
        a, b = CountLadder(0.1), CountLadder(0.1)
        rng = np.random.default_rng(30)
        a.update(np.sort(np.append(rng.uniform(0, 100, 1_000), 100.0)))
        b.update(np.sort(np.append(rng.uniform(0, 100, 10_000), 100.0)))
        assert a.nbytes == b.nbytes
