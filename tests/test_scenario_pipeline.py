"""Tests for the shared scenario pipeline, shard algebra, and spec cache."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.engine import ResultCache, content_digest, source_digest
from repro.experiments import REGISTRY
from repro.scenario import (
    execute,
    run_spec,
    run_spec_cached,
    sharded_summary,
)
from repro.scenario.shard import shard_bounds

#: Small-but-viable synth doc: enough events for every battery check,
#: fast enough for the tier-1 suite.
SYNTH_DOC = {
    "scenario": {"name": "synth-test", "kind": "synth", "seed": 3},
    "source": {"model": "poisson", "n_packets": 6000},
    "validate": {"bin_width": 0.05, "min_level": 5},
}


class TestShardBounds:
    def test_partitions_exactly(self):
        for n in (0, 1, 7, 100):
            for shards in (1, 2, 3, 8):
                bounds = shard_bounds(n, shards)
                covered = [i for lo, hi in bounds for i in range(lo, hi)]
                assert covered == list(range(n))

    def test_balanced(self):
        sizes = [hi - lo for lo, hi in shard_bounds(10, 3)]
        assert max(sizes) - min(sizes) <= 1


class TestShardedSummary:
    def test_matches_serial_bitwise(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.exponential(0.01, 5000).cumsum())
        sizes = rng.integers(40, 1500, times.size).astype(float)
        serial = sharded_summary(times, sizes, jobs=1)
        for jobs in (2, 3, 5):
            sharded = sharded_summary(times, sizes, jobs=jobs)
            assert sharded.n == serial.n
            assert (sharded.counts.finalize() ==
                    serial.counts.finalize()).all()
            f = serial.best_tail_fraction(0.03, "gap")
            assert (sharded.interarrival_tail_beta(f) ==
                    serial.interarrival_tail_beta(f))


class TestSpecVsRegistryIdentity:
    """The two front doors — spec documents and registry calls — share one
    resolver and one runner, so their outputs are byte-identical."""

    def test_flowsim(self):
        doc = {"scenario": {"name": "f", "kind": "flowsim", "seed": 0},
               "flowsim": {"duration": 1200.0, "n_nodes": 4,
                           "sessions_per_hour": 900.0}}
        out = run_spec(doc)
        direct = REGISTRY["flowsim"](seed=0, duration=1200.0, n_nodes=4,
                                     sessions_per_hour=900.0)
        assert out.rendered == direct.render()

    def test_shaping(self):
        cfg = {"n_packets": 4000, "rate_factors": [0.5],
               "burst_seconds": [0.5], "shaper_rate_factors": [1.5]}
        doc = {"scenario": {"name": "s", "kind": "shaping", "seed": 0},
               "shaping": cfg}
        out = run_spec(doc)
        assert out.rendered == execute("shaping", cfg, seed=0).render()

    def test_experiment_kind(self):
        doc = {"scenario": {"name": "e", "kind": "experiment", "seed": 1},
               "experiment": {"name": "fig03"}}
        out = run_spec(doc)
        assert out.rendered == REGISTRY["fig03"](seed=1).render()
        assert out.kind == "experiment"

    def test_experiment_kind_with_params(self):
        doc = {"scenario": {"name": "e", "kind": "experiment", "seed": 2},
               "experiment": {"name": "weathermap",
                              "params": {"hours": 24}}}
        out = run_spec(doc)
        assert out.rendered == REGISTRY["weathermap"](seed=2,
                                                      hours=24).render()


class TestSynthSharding:
    def test_jobs_do_not_change_anything(self):
        serial = run_spec(SYNTH_DOC, jobs=1)
        sharded = run_spec(SYNTH_DOC, jobs=3)
        assert (serial.result.sketch_fingerprint() ==
                sharded.result.sketch_fingerprint())
        assert serial.rendered == sharded.rendered
        a, b = serial.result.payload(), sharded.result.payload()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_poisson_synth_verdict(self):
        out = run_spec(SYNTH_DOC)
        assert out.result.battery.verdict == "poisson-like"
        assert out.result.battery.a2_passed

    def test_policer_reports_loss(self):
        doc = {"scenario": {"name": "p", "kind": "synth", "seed": 3},
               "source": {"model": "ftp", "n_packets": 4000},
               "condition": {"element": "policer", "rate_factor": 0.6,
                             "burst_seconds": 0.5},
               "validate": {"bin_width": 0.02, "min_level": 6}}
        out = run_spec(doc)
        assert out.result.loss_fraction > 0
        assert out.result.battery.n_events < 4000


class TestSpecCache:
    def test_hit_miss_and_mutation(self, tmp_path):
        cache = ResultCache(tmp_path)
        _, s1 = run_spec_cached(SYNTH_DOC, cache=cache)
        out2, s2 = run_spec_cached(SYNTH_DOC, cache=cache)
        assert (s1, s2) == ("miss", "hit")
        serial = run_spec(SYNTH_DOC)
        assert out2.rendered == serial.rendered
        # restating defaults / reordering keys still hits
        reordered = {
            "validate": {"min_level": 5, "bin_width": 0.05},
            "scenario": {"kind": "synth", "seed": 3, "name": "synth-test",
                         "description": ""},
            "source": {"n_packets": 6000, "model": "poisson"},
        }
        _, s3 = run_spec_cached(reordered, cache=cache)
        assert s3 == "hit"
        # any effective change misses: the digest is content-keyed
        mutated = {**SYNTH_DOC,
                   "source": {"model": "poisson", "n_packets": 6001}}
        _, s4 = run_spec_cached(mutated, cache=cache)
        assert s4 == "miss"

    def test_seed_override_changes_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        _, s1 = run_spec_cached(SYNTH_DOC, cache=cache)
        _, s2 = run_spec_cached(SYNTH_DOC, seed=4, cache=cache)
        assert (s1, s2) == ("miss", "miss")

    def test_no_cache_bypasses(self, tmp_path):
        cache = ResultCache(tmp_path)
        _, s1 = run_spec_cached(SYNTH_DOC, cache=cache, use_cache=False)
        _, s2 = run_spec_cached(SYNTH_DOC, cache=cache, use_cache=False)
        assert (s1, s2) == ("off", "off")

    def test_content_digest_contract(self):
        base = content_digest("repro.scenario.pipeline", "abc")
        assert base == content_digest("repro.scenario.pipeline", b"abc")
        assert base != content_digest("repro.scenario.pipeline", "abd")
        assert base != source_digest("repro.scenario.pipeline")


class TestScenarioCli:
    def _write(self, tmp_path, text):
        path = tmp_path / "spec.toml"
        path.write_text(text)
        return str(path)

    def test_validate_committed_examples(self, capsys):
        import glob
        specs = sorted(glob.glob("examples/specs/*.toml"))
        assert len(specs) >= 6
        assert main(["scenario", "validate", *specs]) == 0
        out = capsys.readouterr().out
        assert out.count(": valid") == len(specs)

    def test_validate_bad_spec_rc2(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            '[scenario]\nname = "b"\nkind = "synth"\n\n[source]\n'
            'modle = "ftp"\n')
        assert main(["scenario", "validate", path]) == 2
        err = capsys.readouterr().err
        assert "source.modle" in err and "did you mean" in err

    def test_run_spec_file(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            '[scenario]\nname = "cli-synth"\nkind = "synth"\nseed = 3\n\n'
            '[source]\nmodel = "poisson"\nn_packets = 6000\n\n'
            '[validate]\nbin_width = 0.05\nmin_level = 5\n')
        rc = main(["scenario", "run", path, "--no-cache", "--jobs", "2",
                   "--json", "--out", str(tmp_path)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "cli-synth"
        assert payload["battery"]["verdict"] == "poisson-like"
        bench = tmp_path / "BENCH_scenario_cli-synth.json"
        assert bench.exists()
        on_disk = json.loads(bench.read_text())
        assert on_disk["battery"] == payload["battery"]

    def test_run_unknown_file_rc2(self, tmp_path, capsys):
        assert main(["scenario", "run",
                     str(tmp_path / "missing.toml")]) == 2
