"""Tests for FARIMA(0, d, 0) (Section VII-D's alternative self-similar model)."""

import numpy as np
import pytest

from repro.selfsim import (
    farima_autocovariance,
    farima_sample,
    farima_spectral_density,
    farima_whittle_estimate,
    hurst_from_d,
)


class TestAutocovariance:
    def test_d_zero_is_white_noise(self):
        g = farima_autocovariance(0.0, 10)
        assert g[0] == pytest.approx(1.0)
        assert np.allclose(g[1:], 0.0, atol=1e-12)

    def test_positive_memory_positive_correlation(self):
        g = farima_autocovariance(0.3, 20)
        assert np.all(g[1:] > 0)
        assert np.all(np.diff(g) < 0)  # monotone decay

    def test_negative_memory_negative_lag1(self):
        g = farima_autocovariance(-0.3, 5)
        assert g[1] < 0

    def test_hyperbolic_decay_rate(self):
        """gamma(k) ~ c k^(2d-1) for large k."""
        d = 0.35
        g = farima_autocovariance(d, 4000)
        ratio = g[4000] / g[1000]
        assert ratio == pytest.approx(4.0 ** (2 * d - 1), rel=0.02)

    def test_bad_d(self):
        with pytest.raises(ValueError):
            farima_autocovariance(0.5, 5)


class TestSpectralDensity:
    def test_white_noise_flat(self):
        lam = np.linspace(0.1, np.pi, 20)
        f = farima_spectral_density(lam, 0.0)
        assert np.allclose(f, 1.0 / (2 * np.pi))

    def test_low_frequency_power_law(self):
        """f(l) ~ l^(-2d) as l -> 0."""
        d = 0.4
        lam = np.array([1e-5, 1e-4])
        f = farima_spectral_density(lam, d)
        slope = np.log(f[1] / f[0]) / np.log(lam[1] / lam[0])
        assert slope == pytest.approx(-2 * d, abs=0.01)

    def test_integrates_to_variance(self):
        d = 0.3
        lam = np.linspace(1e-6, np.pi, 500001)
        f = farima_spectral_density(lam, d)
        total = 2 * np.trapezoid(f, lam)
        assert total == pytest.approx(farima_autocovariance(d, 0)[0], abs=0.03)

    def test_frequency_bounds(self):
        with pytest.raises(ValueError):
            farima_spectral_density(np.array([0.0]), 0.2)


class TestSampling:
    def test_reproducible(self):
        a = farima_sample(500, 0.3, seed=1)
        b = farima_sample(500, 0.3, seed=1)
        assert np.array_equal(a, b)

    def test_variance_matches(self):
        d = 0.25
        x = farima_sample(100000, d, seed=2)
        assert x.var() == pytest.approx(farima_autocovariance(d, 0)[0], rel=0.05)

    def test_sample_acf_matches_theory(self):
        d = 0.35
        x = farima_sample(200000, d, seed=3)
        g = farima_autocovariance(d, 3)
        xc = x - x.mean()
        for k in (1, 2, 3):
            emp = float(np.mean(xc[:-k] * xc[k:]))
            assert emp == pytest.approx(g[k], abs=0.05)

    def test_bad_n(self):
        with pytest.raises(ValueError):
            farima_sample(0, 0.2)


class TestWhittle:
    @pytest.mark.parametrize("d", [0.0, 0.2, 0.4, -0.2])
    def test_recovers_d(self, d):
        x = farima_sample(8192, d, seed=int((d + 1) * 100))
        est = farima_whittle_estimate(x)
        assert est.d == pytest.approx(d, abs=0.04)
        assert est.contains(d) or abs(est.d - d) < 0.03

    def test_hurst_mapping(self):
        assert hurst_from_d(0.3) == pytest.approx(0.8)
        with pytest.raises(ValueError):
            hurst_from_d(0.6)

    def test_innovation_variance(self):
        x = 2.0 * farima_sample(8192, 0.2, seed=9)
        est = farima_whittle_estimate(x)
        assert est.sigma2 == pytest.approx(4.0, rel=0.25)

    def test_farima_vs_fgn_cross_consistency(self):
        """Both Whittle variants must agree on H for an LRD series."""
        from repro.selfsim import whittle_estimate

        x = farima_sample(16384, 0.3, seed=10)
        h_farima = farima_whittle_estimate(x).hurst
        h_fgn = whittle_estimate(x).hurst
        assert h_farima == pytest.approx(h_fgn, abs=0.06)
