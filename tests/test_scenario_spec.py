"""Tests for the declarative scenario spec layer (repro.scenario.spec)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario import (
    KIND_SECTIONS,
    KINDS,
    SCHEMA,
    STAGES,
    SpecError,
    canonical_json,
    dump_spec,
    loads_spec,
    resolve,
    resolve_section,
    spec_digest,
    stage_rngs,
)
from repro.scenario.spec import _parse_toml_subset


def _minimal(kind: str) -> dict:
    doc = {"scenario": {"name": f"t-{kind}", "kind": kind}}
    if kind == "experiment":
        doc["experiment"] = {"name": "fig03"}
    return doc


class TestResolve:
    @pytest.mark.parametrize("kind", KINDS)
    def test_fills_every_allowed_section(self, kind):
        resolved = resolve(_minimal(kind))
        assert set(resolved) == {"scenario", *KIND_SECTIONS[kind]}
        for section in KIND_SECTIONS[kind]:
            assert set(resolved[section]) == set(SCHEMA[section])

    @pytest.mark.parametrize("kind", KINDS)
    def test_fixed_point(self, kind):
        resolved = resolve(_minimal(kind))
        assert resolve(resolved) == resolved

    def test_int_coerces_to_float(self):
        doc = _minimal("flowsim")
        doc["flowsim"] = {"duration": 1200}
        assert resolve(doc)["flowsim"]["duration"] == 1200.0

    def test_defaults_are_fresh_copies(self):
        a = resolve(_minimal("shaping"))
        b = resolve(_minimal("shaping"))
        a["shaping"]["rate_factors"].append(99.0)
        assert 99.0 not in b["shaping"]["rate_factors"]


class TestStrictErrors:
    def test_unknown_key_names_path(self):
        doc = _minimal("synth")
        doc["source"] = {"modle": "ftp"}
        with pytest.raises(SpecError) as err:
            resolve(doc)
        assert str(err.value).startswith("source.modle:")
        assert "did you mean 'model'" in str(err.value)
        assert err.value.path == "source.modle"

    def test_unknown_section_for_kind(self):
        doc = _minimal("flowsim")
        doc["shaping"] = {}
        with pytest.raises(SpecError, match="shaping"):
            resolve(doc)

    def test_unknown_scenario_key(self):
        doc = {"scenario": {"name": "x", "kind": "synth", "sed": 3}}
        with pytest.raises(SpecError, match=r"scenario\.sed"):
            resolve(doc)

    def test_missing_required(self):
        with pytest.raises(SpecError, match=r"scenario\.kind"):
            resolve({"scenario": {"name": "x"}})

    def test_bad_choice_suggests(self):
        doc = _minimal("flowsim")
        doc["flowsim"] = {"topology": "lnie"}
        with pytest.raises(SpecError, match="did you mean 'line'"):
            resolve(doc)

    def test_bool_is_not_an_int(self):
        doc = _minimal("synth")
        doc["source"] = {"n_packets": True}
        with pytest.raises(SpecError, match=r"source\.n_packets"):
            resolve(doc)

    def test_list_element_path(self):
        doc = _minimal("shaping")
        doc["shaping"] = {"rate_factors": [0.5, "x"]}
        with pytest.raises(SpecError,
                           match=r"shaping\.rate_factors\[1\]"):
            resolve(doc)

    def test_unknown_experiment_name(self):
        doc = {"scenario": {"name": "x", "kind": "experiment"},
               "experiment": {"name": "fig99"}}
        with pytest.raises(SpecError, match=r"experiment\.name"):
            resolve(doc)

    def test_experiment_param_not_in_signature(self):
        doc = {"scenario": {"name": "x", "kind": "experiment"},
               "experiment": {"name": "fig03", "params": {"nope": 1}}}
        with pytest.raises(SpecError, match=r"experiment\.params\.nope"):
            resolve(doc)

    def test_experiment_seed_param_rejected(self):
        doc = {"scenario": {"name": "x", "kind": "experiment"},
               "experiment": {"name": "fig03", "params": {"seed": 1}}}
        with pytest.raises(SpecError, match="seed"):
            resolve(doc)

    def test_resolve_section_rejects_unknown_synth_section(self):
        with pytest.raises(SpecError, match="unknown section"):
            resolve_section("synth", {"sauce": {}})


# One strategy per section key keeps generated docs always-valid, so the
# round-trip property below is a true fixed-point test, not error fishing.
_SECTION_VALUES = {
    ("scenario", "seed"): st.integers(0, 2**31 - 1),
    ("scenario", "description"): st.text(
        st.characters(min_codepoint=32, max_codepoint=126,
                      exclude_characters='\\"'),
        max_size=20),
    ("flowsim", "topology"): st.sampled_from(["line", "star", "dumbbell"]),
    ("flowsim", "n_nodes"): st.integers(2, 16),
    ("flowsim", "duration"): st.floats(10.0, 1e4),
    ("flowsim", "utilization"): st.floats(0.05, 0.9),
    ("shaping", "rate_factors"): st.lists(
        st.floats(0.1, 2.0), min_size=1, max_size=3),
    ("shaping", "n_packets"): st.integers(100, 10**6),
    ("monitor", "duration"): st.floats(10.0, 1e4),
    ("superpose", "replications"): st.integers(8, 512),
    ("source", "model"): st.sampled_from(
        list(SCHEMA["source"]["model"].choices)),
    ("source", "n_packets"): st.integers(10, 10**6),
    ("condition", "element"): st.sampled_from(
        list(SCHEMA["condition"]["element"].choices)),
    ("validate", "bin_width"): st.floats(0.001, 1.0),
    ("validate", "drift_check"): st.booleans(),
}


@st.composite
def _valid_docs(draw):
    kind = draw(st.sampled_from([k for k in KINDS if k != "experiment"]))
    doc = {"scenario": {"name": "gen", "kind": kind}}
    for (section, key), strat in _SECTION_VALUES.items():
        if section != "scenario" and section not in KIND_SECTIONS[kind]:
            continue
        if draw(st.booleans()):
            doc.setdefault(section, {})[key] = draw(strat)
    return doc


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(_valid_docs())
    def test_parse_normalize_dump_parse_is_fixed_point(self, doc):
        resolved = resolve(doc)
        text = dump_spec(doc)
        reparsed = loads_spec(text)
        assert resolve(reparsed) == resolved
        # dumping the reparsed doc reproduces the text exactly
        assert dump_spec(reparsed) == text

    @settings(max_examples=40, deadline=None)
    @given(_valid_docs())
    def test_digest_invariant_under_dump_cycle(self, doc):
        assert spec_digest(loads_spec(dump_spec(doc))) == spec_digest(doc)

    def test_minimal_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        doc = _minimal("synth")
        doc["source"] = {"model": "ftp", "n_packets": 500}
        doc["validate"] = {"drift_check": False, "bin_width": 0.5}
        text = dump_spec(doc)
        assert _parse_toml_subset(text) == tomllib.loads(text)


class TestDigest:
    def test_key_order_and_defaults_do_not_matter(self):
        a = {"scenario": {"name": "d", "kind": "synth", "seed": 1},
             "source": {"model": "ftp", "n_packets": 500}}
        b = {"source": {"n_packets": 500, "model": "ftp"},
             "scenario": {"kind": "synth", "seed": 1, "name": "d",
                          "description": ""}}
        assert spec_digest(a) == spec_digest(b)
        assert canonical_json(a) == canonical_json(b)

    def test_any_effective_change_changes_digest(self):
        base = {"scenario": {"name": "d", "kind": "synth", "seed": 1},
                "source": {"model": "ftp", "n_packets": 500}}
        for mutated in (
            {**base, "scenario": {**base["scenario"], "seed": 2}},
            {**base, "source": {"model": "ftp", "n_packets": 501}},
            {**base, "source": {"model": "poisson", "n_packets": 500}},
        ):
            assert spec_digest(mutated) != spec_digest(base)


class TestTomlSubset:
    def test_error_cites_line_number(self):
        with pytest.raises(SpecError, match="line 3"):
            _parse_toml_subset("[scenario]\nname = \"x\"\nwhat even\n")

    def test_loads_rejects_bad_toml(self):
        with pytest.raises(SpecError):
            loads_spec("[scenario\nname=")


class TestStageRngs:
    def test_fixed_stage_vocabulary(self):
        rngs = stage_rngs(0)
        assert tuple(rngs) == STAGES

    def test_deterministic_and_independent(self):
        a = stage_rngs(5)["source"].random(4)
        b = stage_rngs(5)["source"].random(4)
        c = stage_rngs(5)["network"].random(4)
        assert (a == b).all()
        assert (a != c).any()
