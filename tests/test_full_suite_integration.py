"""Whole-suite integration: the paper's central dichotomy must hold across
every Table-I trace, not just the few the faster tests sample.

This is the reproduction's capstone check — Section III's conclusion
("user-initiated TCP session arrivals ... are well-modeled as Poisson
processes with fixed hourly rates, but other connection arrivals deviate
considerably") evaluated over all 15 synthesized datasets.
"""

import numpy as np
import pytest

from repro.stats import evaluate_arrival_process
from repro.traces import (
    CONNECTION_TRACE_CONFIGS,
    remove_periodic_traffic,
    synthesize_connection_trace,
)

HOURS = 24


@pytest.fixture(scope="module")
def suite():
    traces = {}
    for i, name in enumerate(CONNECTION_TRACE_CONFIGS):
        traces[name] = synthesize_connection_trace(name, seed=1000 + i,
                                                   hours=HOURS)
    return traces


def _verdicts(suite, protocol, interval=3600.0, min_events=150):
    out = {}
    for name, trace in suite.items():
        times = trace.arrival_times(protocol)
        if times.size < min_events:
            continue
        try:
            res = evaluate_arrival_process(times, interval, start=0.0,
                                           end=HOURS * 3600.0)
        except ValueError:
            continue
        out[name] = res
    return out


class TestSectionThreeAcrossTheSuite:
    def test_telnet_poisson_on_nearly_every_trace(self, suite):
        verdicts = _verdicts(suite, "TELNET")
        assert len(verdicts) >= 12
        passing = sum(r.poisson_consistent for r in verdicts.values())
        # the roll-up itself is a 5%-level test per trace; allow one miss
        assert passing >= len(verdicts) - 1

    def test_ftp_sessions_poisson_after_weathermap_removal(self, suite):
        passing = total = 0
        for name, trace in suite.items():
            cleaned, _ = remove_periodic_traffic(trace, "FTP")
            times = cleaned.arrival_times("FTP")
            if times.size < 150:
                continue
            res = evaluate_arrival_process(times, 3600.0, start=0.0,
                                           end=HOURS * 3600.0)
            total += 1
            passing += res.poisson_consistent
        assert total >= 10
        assert passing >= total - 1

    def test_ftpdata_fails_everywhere(self, suite):
        verdicts = _verdicts(suite, "FTPDATA")
        assert len(verdicts) >= 10
        assert not any(r.poisson_consistent for r in verdicts.values())

    def test_nntp_fails_everywhere(self, suite):
        verdicts = _verdicts(suite, "NNTP")
        assert len(verdicts) >= 8
        assert not any(r.poisson_consistent for r in verdicts.values())

    def test_smtp_fails_everywhere(self, suite):
        verdicts = _verdicts(suite, "SMTP")
        assert len(verdicts) >= 8
        assert not any(r.poisson_consistent for r in verdicts.values())

    def test_smtp_correlation_skews_positive(self, suite):
        verdicts = _verdicts(suite, "SMTP")
        labels = [r.correlation_label for r in verdicts.values()]
        assert labels.count("+") > labels.count("-")

    def test_every_trace_nonempty_with_expected_protocols(self, suite):
        for name, trace in suite.items():
            assert len(trace) > 500, name
            assert "TELNET" in trace.protocol_names, name
