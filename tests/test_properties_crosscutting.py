"""Cross-cutting hypothesis property tests.

These exercise invariants that hold across whole families of inputs:
distribution quantile round-trips, aggregation conservation, FIFO queue
ordering, burst-coalescing partitions, TCP delivery guarantees, and
experiment reproducibility under a fixed seed.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import coalesce_bursts
from repro.distributions import (
    Exponential,
    LogExtreme,
    LogLogistic,
    Log2Normal,
    Pareto,
    Weibull,
)
from repro.queueing import fifo_queue, strict_priority_queue
from repro.selfsim import farima_autocovariance, fgn_autocovariance
from repro.tcp import BottleneckSimulator, TransferSpec

DIST_STRATEGY = st.sampled_from(["exponential", "pareto", "log2normal",
                                 "logextreme", "loglogistic", "weibull"])


def make_dist(name: str, a: float, b: float):
    return {
        "exponential": lambda: Exponential(a),
        "pareto": lambda: Pareto(a, b),
        "log2normal": lambda: Log2Normal(np.log2(a * 10), b),
        "logextreme": lambda: LogExtreme(np.log2(a * 10), b),
        "loglogistic": lambda: LogLogistic(a, b),
        "weibull": lambda: Weibull(a, b),
    }[name]()


class TestDistributionProperties:
    @given(DIST_STRATEGY,
           st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=0.3, max_value=3.0),
           st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=120, deadline=None)
    def test_quantile_roundtrip(self, name, a, b, q):
        d = make_dist(name, a, b)
        x = float(np.atleast_1d(d.ppf(q))[0])
        assume(np.isfinite(x))
        back = float(np.atleast_1d(d.cdf(x))[0])
        assert back == pytest.approx(q, abs=1e-6)

    @given(DIST_STRATEGY,
           st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=0.3, max_value=3.0),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_samples_in_support_and_reproducible(self, name, a, b, seed):
        d = make_dist(name, a, b)
        s1 = d.sample(50, seed=seed)
        s2 = d.sample(50, seed=seed)
        assert np.array_equal(s1, s2)
        assert np.all(s1 >= 0)
        assert np.all(np.isfinite(s1))

    @given(st.floats(min_value=0.51, max_value=0.99),
           st.integers(min_value=2, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_fgn_autocovariance_positive_and_decreasing(self, h, lag):
        g = fgn_autocovariance(h, lag)
        assert np.all(g[1:] > 0)
        assert np.all(np.diff(g[1:]) <= 1e-12)

    @given(st.floats(min_value=0.01, max_value=0.45),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_farima_acvf_positive_for_positive_d(self, d, lag):
        g = farima_autocovariance(d, lag)
        assert g[0] > 0
        assert np.all(g[1:] > 0)


class TestQueueProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=60),
           st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=80, deadline=None)
    def test_fifo_waits_nonnegative_and_bounded(self, arrivals, service):
        res = fifo_queue(arrivals, service)
        assert np.all(res.waiting_times >= 0)
        # nobody waits longer than (n-1) services
        assert res.waiting_times.max() <= service * len(arrivals)

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0),
                    min_size=1, max_size=40),
           st.lists(st.floats(min_value=0.0, max_value=50.0),
                    min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_priority_serves_everyone_once(self, high, low):
        res = strict_priority_queue(np.array(high), np.array(low), 0.1)
        assert res.high_delays.size == len(high)
        assert res.low_delays.size == len(low)
        # strict priority: delays at least one service time
        assert np.all(res.high_delays >= 0.1 - 1e-9)
        assert np.all(res.low_delays >= 0.1 - 1e-9)


class TestBurstProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=500),
                              st.floats(min_value=0.01, max_value=20),
                              st.integers(min_value=1, max_value=10**6)),
                    min_size=1, max_size=50),
           st.floats(min_value=0.5, max_value=8.0))
    @settings(max_examples=60, deadline=None)
    def test_coalescing_is_a_partition(self, rows, spacing):
        starts = [r[0] for r in rows]
        durs = [r[1] for r in rows]
        sizes = [r[2] for r in rows]
        bursts = coalesce_bursts(starts, durs, sizes, spacing=spacing)
        assert sum(b.n_connections for b in bursts) == len(rows)
        assert sum(b.total_bytes for b in bursts) == sum(sizes)
        # bursts ordered, each with start <= end
        for b in bursts:
            assert b.start_time <= b.end_time
        assert all(x.start_time <= y.start_time
                   for x, y in zip(bursts, bursts[1:]))

    @given(st.lists(st.floats(min_value=0, max_value=100),
                    min_size=2, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_larger_spacing_never_more_bursts(self, starts):
        durs = np.ones(len(starts))
        sizes = np.ones(len(starts), dtype=int)
        small = coalesce_bursts(starts, durs, sizes, spacing=1.0)
        large = coalesce_bursts(starts, durs, sizes, spacing=10.0)
        assert len(large) <= len(small)


class TestTcpProperties:
    @given(st.integers(min_value=10, max_value=400),
           st.floats(min_value=0.02, max_value=0.3),
           st.integers(min_value=2, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_every_segment_delivered(self, n_packets, rtt, buffer_packets):
        sim = BottleneckSimulator(rate=200.0, buffer_packets=buffer_packets)
        res = sim.run([TransferSpec(0.0, n_packets, rtt=rtt, max_window=24)])
        t = res.transfers[0]
        assert t.completion_time is not None
        assert len(t.departure_times) >= n_packets
        assert np.all(np.diff(res.departure_times) >= -1e-12)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_deterministic_given_spec(self, _seed):
        sim = BottleneckSimulator(rate=150.0, buffer_packets=8)
        spec = [TransferSpec(0.0, 300, rtt=0.1)]
        a = sim.run(spec)
        b = sim.run(spec)
        assert np.array_equal(a.departure_times, b.departure_times)


class TestExperimentReproducibility:
    @pytest.mark.parametrize("name", ["fig04", "fig14", "appendix_e"])
    def test_same_seed_same_rows(self, name):
        from repro.experiments import REGISTRY

        fn = REGISTRY[name]
        a, b = fn(seed=11), fn(seed=11)
        assert a.rows() == b.rows()
