"""Tests for diurnal profiles and the protocol registry."""

import numpy as np
import pytest

from repro.traces import (
    FIG2_PROTOCOLS,
    REGISTRY,
    ArrivalNature,
    hourly_fractions,
    hourly_profile,
    hourly_rates,
    lookup,
)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert lookup("telnet").name == "TELNET"

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            lookup("GOPHER")

    def test_session_protocols_expected_poisson(self):
        """Section III: only user-session arrivals are Poisson."""
        for name in ("TELNET", "RLOGIN", "FTP"):
            assert REGISTRY[name].expected_poisson_sessions
        for name in ("FTPDATA", "SMTP", "NNTP", "WWW", "X11"):
            assert not REGISTRY[name].expected_poisson_sessions

    def test_x11_is_within_session(self):
        """The paper's conjecture: X11 connections arrive within sessions."""
        assert REGISTRY["X11"].nature is ArrivalNature.WITHIN_SESSION

    def test_fig2_protocols_known(self):
        for name in FIG2_PROTOCOLS:
            assert name in REGISTRY


class TestDiurnalProfiles:
    def test_unit_mean(self):
        for proto in ("TELNET", "FTP", "NNTP", "SMTP", "WWW"):
            assert hourly_profile(proto).mean() == pytest.approx(1.0)

    def test_fractions_sum_to_one(self):
        assert hourly_fractions("TELNET").sum() == pytest.approx(1.0)

    def test_telnet_office_hours_with_lunch_dip(self):
        """Fig. 1: TELNET peaks in office hours, dips at noon."""
        p = hourly_profile("TELNET")
        assert p[10] > p[3]  # busier mid-morning than 3 AM
        assert p[12] < p[11] and p[12] < p[13]  # lunch dip

    def test_ftp_evening_renewal(self):
        """Fig. 1: FTP shows substantial renewal in the evening hours."""
        ftp, telnet = hourly_profile("FTP"), hourly_profile("TELNET")
        assert ftp[20] / ftp.max() > telnet[20] / telnet.max()

    def test_nntp_flat(self):
        """Fig. 1: NNTP maintains a fairly constant rate, dipping slightly
        in the early morning."""
        p = hourly_profile("NNTP")
        assert p.max() / p.min() < 2.0
        assert p[4] < p[14]

    def test_smtp_site_shift(self):
        """Fig. 1: SMTP peaks earlier at the west-coast site."""
        west, east = hourly_profile("SMTP", "west"), hourly_profile("SMTP", "east")
        assert int(np.argmax(west)) < int(np.argmax(east))

    def test_unknown_protocol_flat_with_warning(self):
        with pytest.warns(UserWarning, match="unknown protocol 'OTHER'"):
            assert np.allclose(hourly_profile("OTHER"), 1.0)

    def test_east_falls_back_to_west(self):
        # known protocol at a known site: silent by design (only SMTP
        # differs between coasts)
        assert np.allclose(hourly_profile("TELNET", "east"),
                           hourly_profile("TELNET", "west"))

    def test_protocol_typo_warns_and_strict_raises(self):
        """Regression: the typo 'TELENT' used to silently flatten the
        diurnal cycle out of every downstream synthesis."""
        with pytest.warns(UserWarning, match="TELENT"):
            flat = hourly_profile("TELENT")
        assert np.allclose(flat, 1.0)
        with pytest.raises(KeyError, match="TELENT"):
            hourly_profile("TELENT", strict=True)

    def test_site_typo_warns_and_strict_raises(self):
        with pytest.warns(UserWarning, match="unknown site 'wset'"):
            p = hourly_profile("SMTP", "wset")
        assert np.allclose(p, hourly_profile("SMTP", "west"))
        with pytest.raises(KeyError, match="wset"):
            hourly_profile("SMTP", "wset", strict=True)

    def test_known_inputs_never_warn(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            hourly_profile("TELNET")
            hourly_profile("SMTP", "east")
            hourly_fractions("FTP", strict=True)
            hourly_rates("NNTP", 1.0, 24, strict=True)


class TestHourlyRates:
    def test_mean_rate_preserved(self):
        rates = hourly_rates("TELNET", 0.5, 48)
        assert rates.mean() == pytest.approx(0.5, rel=0.01)

    def test_tiles_across_days(self):
        rates = hourly_rates("TELNET", 1.0, 48)
        assert np.allclose(rates[:24], rates[24:])

    def test_partial_day(self):
        assert hourly_rates("FTP", 1.0, 10).size == 10

    def test_bad_args(self):
        with pytest.raises(ValueError):
            hourly_rates("TELNET", -1.0, 24)
        with pytest.raises(ValueError):
            hourly_rates("TELNET", 1.0, -1)
