"""Tests for the distribution substrate (repro.distributions)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    DiscretePareto,
    EmpiricalDistribution,
    Exponential,
    Log2Normal,
    LogExtreme,
    Pareto,
    Weibull,
    empirical_cdf,
    geometric_mean,
    hill_estimator,
    is_heavy_tailed_estimate,
    moment_summary,
    tail_fit,
)

ALL_CONTINUOUS = [
    Exponential(1.1),
    Pareto(1.0, 1.5),
    Pareto(0.5, 0.9),
    Log2Normal(math.log2(100), 2.24),
    LogExtreme(math.log2(100), math.log2(3.5)),
    Weibull(2.0, 0.7),
]


@pytest.mark.parametrize("dist", ALL_CONTINUOUS, ids=lambda d: f"{d.name}")
class TestDistributionContract:
    """Properties every continuous distribution must satisfy."""

    def test_cdf_monotone(self, dist):
        x = np.geomspace(1e-3, 1e4, 200)
        c = dist.cdf(x)
        assert np.all(np.diff(c) >= -1e-12)
        assert np.all((c >= 0) & (c <= 1))

    def test_sf_complements_cdf(self, dist):
        x = np.geomspace(1e-2, 1e3, 50)
        assert np.allclose(dist.sf(x) + dist.cdf(x), 1.0, atol=1e-10)

    def test_ppf_roundtrip(self, dist):
        q = np.linspace(0.01, 0.99, 25)
        assert np.allclose(dist.cdf(dist.ppf(q)), q, atol=1e-6)

    def test_ppf_rejects_bad_quantiles(self, dist):
        with pytest.raises(ValueError):
            dist.ppf(1.5)

    def test_sampling_matches_cdf(self, dist):
        """KS-style check: empirical CDF of samples tracks the analytic CDF."""
        s = dist.sample(20000, seed=123)
        x, f = empirical_cdf(s)
        # Compare at interior deciles to avoid infinite-tail noise.
        for q in (0.1, 0.3, 0.5, 0.7, 0.9):
            target = float(dist.ppf(q))
            emp = np.searchsorted(x, target) / x.size
            assert emp == pytest.approx(q, abs=0.02)

    def test_sampling_reproducible(self, dist):
        a = dist.sample(10, seed=9)
        b = dist.sample(10, seed=9)
        assert np.array_equal(a, b)

    def test_pdf_nonnegative(self, dist):
        x = np.geomspace(1e-3, 1e3, 100)
        assert np.all(dist.pdf(x) >= 0)

    def test_pdf_integrates_to_one(self, dist):
        lo = float(dist.ppf(1e-6)) if dist.cdf(1e-9) < 1e-6 else 1e-9
        hi = float(dist.ppf(1.0 - 1e-4))
        x = np.geomspace(max(lo, 1e-9), hi, 20001)
        mass = np.trapezoid(dist.pdf(x), x)
        assert mass == pytest.approx(1.0, abs=0.01)


class TestExponential:
    def test_moments(self):
        d = Exponential(2.0)
        assert d.mean == 2.0
        assert d.variance == 4.0
        assert d.rate == 0.5

    def test_memoryless_cmex(self):
        d = Exponential(1.3)
        assert d.cmex(0.5) == pytest.approx(1.3)
        assert d.cmex(10.0) == pytest.approx(1.3)

    def test_fit_recovers_mean(self):
        s = Exponential(1.1).sample(50000, seed=4)
        assert Exponential.fit(s).mean == pytest.approx(1.1, rel=0.05)

    def test_fit_geometric(self):
        d = Exponential(1.0)
        s = d.sample(100000, seed=5)
        fitted = Exponential.fit_geometric(s)
        assert geometric_mean(s) == pytest.approx(fitted.geometric_mean_value, rel=0.05)

    def test_geometric_mean_closed_form(self):
        d = Exponential(3.0)
        s = d.sample(200000, seed=6)
        assert geometric_mean(s) == pytest.approx(d.geometric_mean_value, rel=0.02)

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            Exponential.fit([])


class TestPareto:
    def test_infinite_mean_for_beta_below_one(self):
        assert Pareto(1.0, 0.9).mean == math.inf
        assert Pareto(1.0, 1.0).mean == math.inf

    def test_finite_mean(self):
        d = Pareto(2.0, 3.0)
        assert d.mean == pytest.approx(3.0)

    def test_infinite_variance_for_beta_below_two(self):
        assert Pareto(1.0, 1.5).variance == math.inf
        assert Pareto(1.0, 3.0).variance < math.inf

    def test_cdf_below_location_is_zero(self):
        d = Pareto(2.0, 1.5)
        assert d.cdf(1.9) == 0.0
        assert d.sf(1.0) == 1.0

    def test_scale_invariance(self):
        """P[X > 2x] / P[X > x] is constant in x (Appendix B)."""
        d = Pareto(1.0, 1.2)
        xs = np.array([2.0, 5.0, 50.0, 500.0])
        ratios = d.sf(2 * xs) / d.sf(xs)
        assert np.allclose(ratios, ratios[0])

    def test_truncation_invariance(self):
        """X | X > x0 is Pareto with same shape, location x0 (eq. 2)."""
        d = Pareto(1.0, 1.3)
        t = d.truncated_from_below(5.0)
        assert t.shape == d.shape
        assert t.location == 5.0
        x = np.array([6.0, 10.0, 100.0])
        cond = d.sf(x) / d.sf(5.0)
        assert np.allclose(cond, t.sf(x))

    def test_truncation_below_location_is_noop(self):
        d = Pareto(2.0, 1.0)
        t = d.truncated_from_below(1.0)
        assert t.location == 2.0

    def test_cmex_linear(self):
        """CMEX(x) = x / (beta - 1) for beta > 1 (Appendix B)."""
        d = Pareto(1.0, 3.0)
        assert d.cmex(4.0) == pytest.approx(2.0)
        assert d.cmex(8.0) == pytest.approx(4.0)

    def test_cmex_infinite_for_heavy_shape(self):
        assert Pareto(1.0, 0.9).cmex(5.0) == math.inf

    def test_cmex_numeric_agrees_with_closed_form(self):
        d = Pareto(1.0, 2.5)
        numeric = Distribution_cmex_numeric(d, 3.0)
        assert numeric == pytest.approx(d.cmex(3.0), rel=0.05)

    def test_mle_fit(self):
        d = Pareto(2.0, 1.4)
        s = d.sample(100000, seed=7)
        fit = Pareto.fit(s)
        assert fit.shape == pytest.approx(1.4, rel=0.05)
        assert fit.location == pytest.approx(2.0, rel=0.01)

    def test_truncated_mean_monotone_in_upper(self):
        d = Pareto(1.0, 0.9)
        m1 = d.truncated_mean(10.0)
        m2 = d.truncated_mean(1000.0)
        assert m2 > m1  # infinite-mean regime: grows without bound

    def test_truncated_mean_beta1_log_growth(self):
        d = Pareto(1.0, 1.0)
        assert d.truncated_mean(math.e) == pytest.approx(1.0 + 1.0, rel=0.01)

    def test_samples_respect_location(self):
        s = Pareto(3.0, 1.1).sample(1000, seed=8)
        assert np.all(s >= 3.0)


class TestHillEstimator:
    def test_recovers_pareto_shape(self):
        s = Pareto(1.0, 1.2).sample(50000, seed=10)
        est = hill_estimator(s, k=2000)
        assert est == pytest.approx(1.2, rel=0.1)

    def test_tail_fit_on_mixture(self):
        """Body exponential + Pareto tail: fit only sees the tail."""
        rng = np.random.default_rng(11)
        body = Exponential(1.0).sample(45000, seed=rng)
        tail = Pareto(10.0, 0.95).sample(5000, seed=rng)
        fit = tail_fit(np.concatenate([body, tail]), tail_fraction=0.05)
        assert 0.7 < fit.shape < 1.3

    def test_bad_k(self):
        with pytest.raises(ValueError):
            hill_estimator([1.0, 2.0, 3.0], k=3)


class TestLog2Normal:
    def test_paper_parameters(self):
        d = Log2Normal.paxson_telnet_packets()
        assert d.log2_mean == pytest.approx(math.log2(100))
        assert d.log2_sd == pytest.approx(2.24)

    def test_median(self):
        d = Log2Normal(math.log2(100), 2.24)
        assert d.median == pytest.approx(100.0, rel=1e-6)

    def test_moments_against_samples(self):
        d = Log2Normal(3.0, 0.5)
        s = d.sample(200000, seed=12)
        assert np.mean(s) == pytest.approx(d.mean, rel=0.02)

    def test_not_heavy_tailed(self):
        assert not Log2Normal(1.0, 1.0).is_heavy_tailed()

    def test_fit_roundtrip(self):
        d = Log2Normal(5.0, 1.5)
        s = d.sample(50000, seed=13)
        fit = Log2Normal.fit(s)
        assert fit.log2_mean == pytest.approx(5.0, abs=0.05)
        assert fit.log2_sd == pytest.approx(1.5, abs=0.05)

    def test_tail_lighter_than_pareto(self):
        """Appendix E: log-normal tail eventually below any power law."""
        d = Log2Normal(0.0, 1.0)
        p = Pareto(1.0, 5.0)  # even a light power law
        x = 1e6
        assert d.sf(x) < p.sf(x)


class TestLogExtreme:
    def test_paper_parameters(self):
        d = LogExtreme.paxson_telnet_bytes()
        assert d.alpha == pytest.approx(math.log2(100))
        assert d.beta == pytest.approx(math.log2(3.5))

    def test_log2_median(self):
        d = LogExtreme(5.0, 2.0)
        # median of Gumbel = alpha - beta ln(ln 2)
        assert d.log2_median == pytest.approx(5.0 - 2.0 * math.log(math.log(2.0)))

    def test_mean_infinite_when_scale_large(self):
        # beta * ln2 >= 1 <=> beta >= 1.4427
        assert LogExtreme(1.0, 2.0).mean == math.inf

    def test_mean_finite_when_scale_small(self):
        d = LogExtreme(2.0, 0.5)
        s = d.sample(500000, seed=14)
        assert np.mean(s) == pytest.approx(d.mean, rel=0.05)

    def test_fit_roundtrip(self):
        d = LogExtreme(6.6, 1.8)
        s = d.sample(100000, seed=15)
        fit = LogExtreme.fit(s)
        assert fit.alpha == pytest.approx(6.6, abs=0.1)
        assert fit.beta == pytest.approx(1.8, abs=0.1)


class TestWeibull:
    def test_mean_variance(self):
        d = Weibull(1.0, 1.0)  # equals Exponential(1)
        assert d.mean == pytest.approx(1.0)
        assert d.variance == pytest.approx(1.0)

    def test_subexponential_flag(self):
        assert Weibull(1.0, 0.5).is_subexponential()
        assert not Weibull(1.0, 2.0).is_subexponential()

    def test_matches_exponential_at_shape_one(self):
        w, e = Weibull(2.0, 1.0), Exponential(2.0)
        x = np.linspace(0.1, 10, 50)
        assert np.allclose(w.cdf(x), e.cdf(x))


class TestDiscretePareto:
    def test_pmf_values(self):
        d = DiscretePareto()
        assert d.pmf(0) == pytest.approx(1 / 2)
        assert d.pmf(1) == pytest.approx(1 / 6)
        assert d.pmf(2) == pytest.approx(1 / 12)

    def test_pmf_sums_to_one(self):
        d = DiscretePareto()
        n = np.arange(0, 200000)
        assert d.pmf(n).sum() == pytest.approx(1.0, abs=1e-4)

    def test_cdf_telescopes(self):
        d = DiscretePareto()
        assert d.cdf(0) == pytest.approx(0.5)
        assert d.cdf(2) == pytest.approx(0.75)

    def test_infinite_mean(self):
        assert DiscretePareto().mean == math.inf

    def test_samples_integer_nonnegative(self):
        s = DiscretePareto().sample(1000, seed=16)
        assert s.dtype == np.int64
        assert np.all(s >= 0)

    def test_sample_median_near_one(self):
        s = DiscretePareto().sample(50000, seed=17)
        # P[X=0] = 1/2, so median is 0 or 1
        assert np.median(s) <= 1


class TestEmpiricalDistribution:
    def test_requires_full_probability_span(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([0.1, 1.0], [1.0, 2.0])

    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([0.0, 0.5, 1.0], [1.0, 2.0])

    def test_log_interp_requires_positive(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([0.0, 1.0], [0.0, 1.0], log_interp=True)

    def test_ppf_cdf_roundtrip(self):
        d = EmpiricalDistribution([0.0, 0.5, 1.0], [1.0, 10.0, 100.0])
        q = np.linspace(0.0, 1.0, 21)
        assert np.allclose(d.cdf(d.ppf(q)), q, atol=1e-9)

    def test_from_samples_resamples_distribution(self):
        src = Exponential(2.0)
        d = EmpiricalDistribution.from_samples(src.sample(50000, seed=18))
        s = d.sample(50000, seed=19)
        assert np.mean(s) == pytest.approx(2.0, rel=0.05)

    def test_support(self):
        d = EmpiricalDistribution([0.0, 1.0], [0.5, 8.0])
        assert d.support == (0.5, 8.0)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_samples_within_support(self, seed):
        d = EmpiricalDistribution([0.0, 0.3, 1.0], [0.1, 1.0, 50.0])
        s = d.sample(100, seed=seed)
        assert np.all((s >= 0.1) & (s <= 50.0))


class TestHelpers:
    def test_empirical_cdf_shape(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        assert x.tolist() == [1.0, 2.0, 3.0]
        assert f.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_moment_summary_keys(self):
        s = moment_summary([1.0, 2.0, 3.0])
        assert s["mean"] == pytest.approx(2.0)
        assert "geometric_mean" in s

    def test_heavy_tail_detector_pareto_vs_uniform(self):
        rng = np.random.default_rng(20)
        heavy = Pareto(1.0, 1.1).sample(20000, seed=21)
        light = rng.uniform(0, 1, 20000)
        assert is_heavy_tailed_estimate(heavy)
        assert not is_heavy_tailed_estimate(light)


def Distribution_cmex_numeric(dist, x):
    """Call the generic numeric CMEX path (bypassing closed-form override)."""
    from repro.distributions.base import Distribution

    return Distribution.cmex(dist, x)


class TestTruncated:
    def test_finite_mean_from_infinite_mean_base(self):
        from repro.distributions import Truncated

        base = Pareto(1.0, 0.9)  # infinite mean
        t = Truncated(base, 1000.0)
        assert math.isfinite(t.mean)
        assert 1.0 < t.mean < 1000.0

    def test_cdf_reaches_one_at_upper(self):
        from repro.distributions import Truncated

        t = Truncated(Exponential(2.0), 5.0)
        assert float(t.cdf(5.0)) == pytest.approx(1.0)
        assert float(t.cdf(10.0)) == 1.0

    def test_ppf_roundtrip(self):
        from repro.distributions import Truncated

        t = Truncated(Pareto(1.0, 1.2), 100.0)
        q = np.linspace(0.01, 0.99, 20)
        assert np.allclose(t.cdf(t.ppf(q)), q, atol=1e-9)

    def test_samples_bounded(self):
        from repro.distributions import Truncated

        t = Truncated(Pareto(1.0, 0.5), 50.0)
        s = t.sample(5000, seed=1)
        assert np.all((s >= 1.0) & (s <= 50.0))

    def test_truncated_mass(self):
        from repro.distributions import Truncated

        base = Pareto(1.0, 1.0)
        t = Truncated(base, 10.0)
        assert t.truncated_mass == pytest.approx(0.1)

    def test_conditional_law_matches_rejection_sampling(self):
        from repro.distributions import Truncated

        base = Exponential(1.0)
        t = Truncated(base, 2.0)
        raw = base.sample(200000, seed=2)
        accepted = raw[raw <= 2.0]
        s = t.sample(accepted.size, seed=3)
        assert np.mean(s) == pytest.approx(np.mean(accepted), rel=0.02)

    def test_no_mass_raises(self):
        from repro.distributions import Truncated

        with pytest.raises(ValueError):
            Truncated(Pareto(10.0, 1.0), 5.0)  # upper below the support
