"""Tests for the Section IV TELNET synthesis schemes."""

import numpy as np
import pytest

from repro.core import (
    ConnectionSpec,
    Scheme,
    clustering_score,
    connection_packet_times,
    multiplexed_telnet,
    synthesize_packet_arrivals,
)


class TestConnectionPacketTimes:
    def test_counts_match_spec(self):
        spec = ConnectionSpec(start_time=10.0, n_packets=50)
        for scheme in (Scheme.TCPLIB, Scheme.EXP):
            t = connection_packet_times(spec, scheme, seed=1)
            assert t.size == 50
            assert np.all(t > 10.0)

    def test_var_exp_respects_duration(self):
        spec = ConnectionSpec(5.0, 100, duration=60.0)
        t = connection_packet_times(spec, Scheme.VAR_EXP, seed=2)
        assert t.size == 100
        assert np.all((t >= 5.0) & (t < 65.0))

    def test_var_exp_requires_duration(self):
        with pytest.raises(ValueError):
            connection_packet_times(ConnectionSpec(0.0, 5), Scheme.VAR_EXP)

    def test_zero_packets(self):
        assert connection_packet_times(
            ConnectionSpec(0.0, 0), Scheme.TCPLIB
        ).size == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ConnectionSpec(-1.0, 5)
        with pytest.raises(ValueError):
            ConnectionSpec(0.0, -5)

    def test_tcplib_more_clustered_than_exp(self):
        """Fig. 4's visual claim, quantified: a much larger share of Tcplib
        gaps fall below 1 s than exponential gaps at similar mean."""
        spec = ConnectionSpec(0.0, 2000)
        t_tcp = connection_packet_times(spec, Scheme.TCPLIB, seed=3)
        t_exp = connection_packet_times(spec, Scheme.EXP, seed=4)
        assert clustering_score(t_tcp, 0.2) > clustering_score(t_exp, 0.2) + 0.15


class TestSynthesizeTrace:
    def test_ids_and_order(self):
        specs = [ConnectionSpec(0.0, 10), ConnectionSpec(5.0, 10)]
        times, ids = synthesize_packet_arrivals(specs, Scheme.EXP, seed=5)
        assert times.size == 20
        assert np.all(np.diff(times) >= 0)
        assert set(ids.tolist()) == {0, 1}

    def test_horizon_truncation(self):
        specs = [ConnectionSpec(0.0, 1000)]
        times, _ = synthesize_packet_arrivals(specs, Scheme.EXP, seed=6,
                                              horizon=100.0)
        assert np.all(times < 100.0)
        assert times.size < 1000

    def test_empty(self):
        times, ids = synthesize_packet_arrivals([], Scheme.TCPLIB)
        assert times.size == ids.size == 0


class TestMultiplexing:
    """The Section IV experiment: mean ~equal, Tcplib variance ~2.5x."""

    @pytest.fixture(scope="class")
    def results(self):
        tcp = multiplexed_telnet(100, 600.0, Scheme.TCPLIB, seed=7)
        exp = multiplexed_telnet(100, 600.0, Scheme.EXP, seed=8)
        return tcp, exp

    def test_means_comparable(self, results):
        tcp, exp = results
        # paper: both means ~92 packets/s (100 sources / 1.1 s mean gap)
        assert tcp.mean == pytest.approx(exp.mean, rel=0.15)
        assert 70 < exp.mean < 110

    def test_tcplib_variance_much_larger(self, results):
        tcp, exp = results
        assert tcp.variance > 1.5 * exp.variance

    def test_exp_variance_near_poisson(self, results):
        _, exp = results
        # multiplexed renewal exp sources ~ Poisson: var ~ mean
        assert exp.variance == pytest.approx(exp.mean, rel=0.35)

    def test_var_exp_rejected(self):
        with pytest.raises(ValueError):
            multiplexed_telnet(10, 60.0, Scheme.VAR_EXP)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            multiplexed_telnet(0, 60.0)
        with pytest.raises(ValueError):
            multiplexed_telnet(10, 0.0)


class TestClusteringScore:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            clustering_score(np.array([1.0]))

    def test_range(self):
        rng = np.random.default_rng(9)
        s = clustering_score(np.cumsum(rng.exponential(1.0, 100)))
        assert 0.0 <= s <= 1.0
