"""Second round of property-based tests: truncation algebra, cross-traffic
conservation, detrending invariants, and visual-similarity bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import homogeneous_poisson, self_similar_cross_traffic
from repro.distributions import Exponential, Pareto, Truncated
from repro.selfsim import remove_cycle, visual_self_similarity
from repro.tcp import BottleneckSimulator, TransferSpec


class TestTruncatedProperties:
    @given(st.floats(min_value=0.3, max_value=3.0),
           st.floats(min_value=2.0, max_value=500.0),
           st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=80, deadline=None)
    def test_quantile_roundtrip(self, shape, upper, q):
        t = Truncated(Pareto(1.0, shape), upper)
        x = float(np.atleast_1d(t.ppf(q))[0])
        assert 1.0 <= x <= upper + 1e-9
        assert float(np.atleast_1d(t.cdf(x))[0]) == pytest.approx(q, abs=1e-6)

    @given(st.floats(min_value=0.5, max_value=5.0),
           st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_truncation_reduces_mean(self, mean, upper):
        base = Exponential(mean)
        t = Truncated(base, upper)
        # the numeric quantile-grid mean carries ~1e-5 relative bias
        assert t.mean <= base.mean * (1.0 + 1e-3)

    @given(st.floats(min_value=10.0, max_value=1000.0))
    @settings(max_examples=30, deadline=None)
    def test_wider_truncation_more_mass(self, upper):
        base = Pareto(1.0, 1.0)
        narrow = Truncated(base, upper)
        wide = Truncated(base, upper * 2)
        assert wide.truncated_mass <= narrow.truncated_mass


class TestCrossTrafficConservation:
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.floats(min_value=20.0, max_value=120.0))
    @settings(max_examples=8, deadline=None)
    def test_udp_packets_conserved(self, seed, udp_rate):
        sim = BottleneckSimulator(rate=200.0, buffer_packets=8)
        udp = homogeneous_poisson(udp_rate, 20.0, seed=seed)
        res = sim.run([TransferSpec(0.0, 400, rtt=0.1)], cross_traffic=udp)
        delivered = res.cross_traffic_times.size
        assert delivered + res.cross_traffic_drops == udp.size

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_udp_never_slows_itself(self, seed):
        """Unresponsive means unresponsive: UDP departures are a subset of
        its arrivals, never re-paced by losses."""
        sim = BottleneckSimulator(rate=300.0, buffer_packets=6)
        udp = homogeneous_poisson(60.0, 15.0, seed=seed)
        res = sim.run([TransferSpec(0.0, 300, rtt=0.05)], cross_traffic=udp)
        # each departure is >= its arrival (no reordering artifacts)
        assert np.all(np.diff(res.cross_traffic_times) >= -1e-12)


class TestDetrendProperties:
    @given(st.integers(min_value=2, max_value=40),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_remove_cycle_preserves_grand_mean(self, period, seed):
        rng = np.random.default_rng(seed)
        x = rng.poisson(10, period * 10).astype(float) + 1.0
        d = remove_cycle(x, period)
        n = (x.size // period) * period
        assert d[:n].mean() == pytest.approx(x[:n].mean(), rel=0.02)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_detrending_idempotent_on_flat_series(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.poisson(20, 600).astype(float) + 1.0
        once = remove_cycle(x, 30)
        twice = remove_cycle(once, 30)
        assert np.allclose(once, twice, rtol=0.05, atol=0.5)


class TestVisualSimilarityBounds:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_score_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.poisson(15, 8192).astype(float)
        res = visual_self_similarity(x, levels=(1, 4, 16))
        assert res.score >= 0.0
        assert np.all(res.pairwise_distances >= 0.0)


class TestCrossTrafficGenerator:
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.floats(min_value=0.55, max_value=0.8))
    @settings(max_examples=10, deadline=None)
    def test_rate_tracks_target(self, seed, hurst):
        # The envelope's sample mean converges only as n^(H-1), so the
        # realized rate wanders; keep H <= 0.8 and the bound generous.
        t = self_similar_cross_traffic(30.0, 1000.0, hurst=hurst,
                                       burstiness=0.4, seed=seed)
        assert len(t) / 1000.0 == pytest.approx(30.0, rel=0.45)
