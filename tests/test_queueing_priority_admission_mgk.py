"""Tests for the Section VIII implication experiments (priority starvation,
admission control) and the Section VII-C-2 M/G/k variant."""

import numpy as np
import pytest

from repro.arrivals import homogeneous_poisson, simulate_mgk
from repro.distributions import Exponential, LogLogistic, Pareto
from repro.queueing import admission_experiment, strict_priority_queue
from repro.selfsim import fgn_sample


class TestStrictPriority:
    def test_high_class_unaffected_by_low(self):
        rng = np.random.default_rng(1)
        high = np.sort(rng.uniform(0, 100, 200))
        low = np.sort(rng.uniform(0, 100, 200))
        with_low = strict_priority_queue(high, low, 0.1)
        alone = strict_priority_queue(high, np.array([]), 0.1)
        # non-preemptive: at most one extra service time of interference
        assert with_low.mean_high_delay <= alone.mean_high_delay + 0.1 + 1e-9

    def test_low_class_waits_behind_high(self):
        high = np.zeros(10)  # burst of 10 high packets at t=0
        low = np.array([0.0])
        res = strict_priority_queue(high, low, 1.0)
        assert res.low_delays[0] == pytest.approx(11.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            strict_priority_queue(np.array([]), np.array([]), 1.0)

    def test_lrd_high_class_starves_low_longer(self):
        """Section VIII: LRD high-priority bursts starve the low class for
        long periods, compared to Poisson high-priority traffic of the same
        mean rate."""
        n = 4000
        rng = np.random.default_rng(2)
        # high class: fGn-modulated arrival counts vs Poisson, same mean
        lam = np.maximum(fgn_sample(n, 0.9, seed=3) * 4.0 + 6.0, 0.0)
        lrd_counts = rng.poisson(lam)
        poisson_counts = rng.poisson(6.0, n)

        def to_times(counts):
            times = []
            for i, c in enumerate(counts):
                if c:
                    times.append(i + rng.random(c))
            return np.sort(np.concatenate(times))

        low = np.sort(rng.uniform(0, n, int(n * 1.5)))
        service = 1.0 / 10.0  # capacity 10/s vs mean load 6 + 1.5
        res_lrd = strict_priority_queue(to_times(lrd_counts), low, service)
        res_poi = strict_priority_queue(to_times(poisson_counts), low, service)
        assert res_lrd.longest_low_starvation > 2.0 * res_poi.longest_low_starvation
        assert res_lrd.p99_low_delay > res_poi.p99_low_delay

    def test_utilization_sane(self):
        high = np.arange(0.0, 100.0, 1.0)
        low = np.arange(0.5, 100.0, 1.0)
        res = strict_priority_queue(high, low, 0.3)
        assert 0.5 < res.utilization <= 1.01


class TestAdmissionControl:
    def _counts(self, kind, n=6000, mean=50.0):
        rng = np.random.default_rng(7)
        if kind == "poisson":
            return rng.poisson(mean, n).astype(float)
        lam = np.maximum(fgn_sample(n, 0.9, seed=8) * 12.0 + mean, 0.0)
        return rng.poisson(lam).astype(float)

    def test_lrd_misleads_more_often(self):
        """Section VIII: a recent-measurement policy is 'easily misled
        following a long period of fairly low traffic rates' when the
        measured class is long-range dependent."""
        cap, flow = 70.0, 10.0
        poisson = admission_experiment(self._counts("poisson"), cap, flow)
        lrd = admission_experiment(self._counts("lrd"), cap, flow)
        assert lrd.misled_rate > 2.0 * max(poisson.misled_rate, 0.001)

    def test_tight_capacity_rejects(self):
        counts = self._counts("poisson")
        res = admission_experiment(counts, capacity=52.0, flow_rate=10.0)
        assert res.admission_rate < 0.6

    def test_loose_capacity_admits(self):
        counts = self._counts("poisson")
        res = admission_experiment(counts, capacity=100.0, flow_rate=5.0)
        assert res.admission_rate > 0.9
        assert res.misled_rate < 0.1

    def test_short_series_raises(self):
        with pytest.raises(ValueError):
            admission_experiment(np.ones(50), 10.0, 1.0)


class TestMGk:
    def test_mmk_matches_erlang_c_queue(self):
        """M/M/6 with offered load 5: Erlang-C gives Lq ~ 2.9."""
        r = simulate_mgk(5.0, Exponential(1.0), k=6, n_steps=60000, seed=2)
        assert r.mean_queue == pytest.approx(2.94, rel=0.35)
        assert r.utilization == pytest.approx(5.0 / 6.0, rel=0.05)

    def test_large_k_recovers_mg_infinity_mean(self):
        """k >> offered load: busy-server count ~ M/G/inf occupancy."""
        r = simulate_mgk(5.0, Pareto(1.0, 1.5), k=500, n_steps=30000,
                         seed=3, warmup=30000.0)
        assert r.in_service.mean() == pytest.approx(15.0, rel=0.1)
        assert r.mean_queue == pytest.approx(0.0, abs=0.01)

    def test_finite_k_keeps_large_scale_correlations(self):
        """The paper: limited capacity 'does not eliminate the underlying
        large-scale correlations'."""
        r = simulate_mgk(5.0, Pareto(1.0, 1.5), k=25, n_steps=30000,
                         seed=4, warmup=30000.0)
        x = r.in_service.astype(float)
        xc = x - x.mean()
        ac50 = float(np.mean(xc[:-50] * xc[50:])) / x.var()
        assert ac50 > 0.03  # Poisson counts would be ~0

    def test_waiting_room_grows_when_saturated(self):
        r = simulate_mgk(5.0, Exponential(1.0), k=4, n_steps=5000, seed=5)
        assert r.mean_queue > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_mgk(0.0, Exponential(1.0), 1, 10)
        with pytest.raises(ValueError):
            simulate_mgk(1.0, Exponential(1.0), 0, 10)
        with pytest.raises(ValueError):
            simulate_mgk(1.0, Exponential(1.0), 1, 0)


class TestLogLogistic:
    def test_median_is_scale(self):
        d = LogLogistic(5.0, 2.0)
        assert float(d.ppf(0.5)) == pytest.approx(5.0)

    def test_mean_closed_form(self):
        d = LogLogistic(2.0, 3.0)
        s = d.sample(500000, seed=6)
        assert np.mean(s) == pytest.approx(d.mean, rel=0.03)

    def test_infinite_moments(self):
        import math

        assert LogLogistic(1.0, 1.0).mean == math.inf
        assert LogLogistic(1.0, 2.0).variance == math.inf

    def test_power_law_tail(self):
        d = LogLogistic(1.0, 1.5)
        xs = np.array([10.0, 100.0])
        ratio = d.sf(xs[1]) / d.sf(xs[0])
        assert ratio == pytest.approx(10.0 ** (-1.5), rel=0.05)

    def test_heavier_than_exponential(self):
        """Fig. 8: spacing tails 'much heavier than exponential'."""
        ll = LogLogistic(1.0, 2.0)
        ex = Exponential(ll.mean)
        assert ll.sf(20.0) > ex.sf(20.0)

    def test_fit_roundtrip(self):
        d = LogLogistic(3.0, 2.5)
        fit = LogLogistic.fit(d.sample(100000, seed=7))
        assert fit.scale == pytest.approx(3.0, rel=0.05)
        assert fit.shape == pytest.approx(2.5, rel=0.1)

    def test_cdf_ppf_roundtrip(self):
        d = LogLogistic(2.0, 1.3)
        q = np.linspace(0.05, 0.95, 10)
        assert np.allclose(d.cdf(d.ppf(q)), q)
