"""Tests for trace characterization, the VT slope bootstrap, and
failure-injection (bad inputs must be rejected cleanly, never propagated)."""

import math

import numpy as np
import pytest

from repro.arrivals import homogeneous_poisson
from repro.distributions import Exponential, Pareto
from repro.selfsim import CountProcess, fgn_sample, slope_bootstrap
from repro.stats import anderson_darling_exponential, evaluate_arrival_process
from repro.traces import (
    ConnectionRecord,
    ConnectionTrace,
    bulk_vs_interactive_bytes,
    characterize,
    dominant_byte_protocol,
    synthesize_connection_trace,
)


class TestCharacterize:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthesize_connection_trace("LBL-1", seed=2, hours=24)

    def test_shares_sum_to_one(self, trace):
        rows = characterize(trace)
        assert sum(s.byte_share for s in rows) == pytest.approx(1.0)
        assert sum(s.connection_share for s in rows) == pytest.approx(1.0)

    def test_sorted_by_bytes(self, trace):
        rows = characterize(trace)
        totals = [s.total_bytes for s in rows]
        assert totals == sorted(totals, reverse=True)

    def test_ftpdata_carries_the_bulk(self, trace):
        """Section VI: 'FTPDATA connections currently carry the bulk of
        the data bytes in wide area networks'."""
        assert dominant_byte_protocol(trace) in ("FTPDATA", "NNTP")
        ftp = next(s for s in characterize(trace) if s.protocol == "FTPDATA")
        assert ftp.byte_share > 0.2

    def test_bulk_dominates_interactive(self, trace):
        bulk, interactive = bulk_vs_interactive_bytes(trace)
        assert bulk > interactive

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            characterize(ConnectionTrace("empty", []))

    def test_row_keys(self, trace):
        row = characterize(trace)[0].row()
        assert {"protocol", "conns", "MB", "byte_share"} <= set(row)


class TestSlopeBootstrap:
    def test_poisson_interval_covers_minus_one(self):
        t = homogeneous_poisson(30.0, 5000.0, seed=1)
        cp = CountProcess.from_times(t, 0.5, start=0.0, end=5000.0)
        point, (lo, hi) = slope_bootstrap(cp, n_boot=60, seed=2)
        assert lo <= point <= hi
        assert lo < -0.8  # interval reaches the Poisson slope

    def test_lrd_interval_excludes_minus_one(self):
        x = fgn_sample(20000, 0.9, seed=3) * 5 + 50
        cp = CountProcess(x, 0.5)
        point, (lo, hi) = slope_bootstrap(cp, n_boot=60, seed=4)
        assert hi < -0.01
        assert lo > -0.75  # decisively shallower than -1

    def test_validation(self):
        cp = CountProcess(np.random.default_rng(5).poisson(5, 5000) + 0.0, 1.0)
        with pytest.raises(ValueError):
            slope_bootstrap(cp, n_boot=5)
        with pytest.raises(ValueError):
            slope_bootstrap(CountProcess(np.arange(30) + 0.0, 1.0))


class TestFailureInjection:
    """Pathological inputs are refused with clear errors, not NaNs."""

    def test_ad_test_rejects_nan(self):
        with pytest.raises(ValueError):
            anderson_darling_exponential(np.array([1.0, float("nan"), 2.0]))

    def test_poisson_pipeline_rejects_empty(self):
        with pytest.raises(ValueError):
            evaluate_arrival_process(np.zeros(0), 3600.0)

    def test_distribution_rejects_nan_params(self):
        with pytest.raises(ValueError):
            Exponential(float("nan"))
        with pytest.raises(ValueError):
            Pareto(1.0, float("nan"))

    def test_ppf_rejects_nan_quantiles(self):
        with pytest.raises(ValueError):
            Pareto(1.0, 1.5).ppf(np.array([0.5, float("nan")]))

    def test_connection_record_rejects_nan_time(self):
        with pytest.raises(ValueError):
            ConnectionRecord(float("nan"), 1.0, "TELNET")

    def test_count_process_rejects_nan_binwidth(self):
        with pytest.raises(ValueError):
            CountProcess(np.ones(4), float("nan"))

    def test_infinite_duration_record_rejected(self):
        with pytest.raises(ValueError):
            ConnectionRecord(0.0, -math.inf, "TELNET")
