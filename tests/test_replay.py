"""End-to-end and unit tests for live traffic replay (repro.replay).

The acceptance properties of the subsystem:

* a ``speed=0`` TCP loopback over a real localhost socket is lossless in
  block mode and the capture file is *byte-identical* to the source;
* a multiplexed replay (N flows) loses nothing and preserves the record
  multiset (arrival order interleaves, timestamps sort back equal);
* pacing honours absolute deadlines — drift-corrected targets, no sleep
  after a deadline, late events counted — and the token bucket caps the
  average rate even for batches far beyond its depth;
* the closed-loop battery (Poisson sessions, Pareto tail, variance-time)
  reports PASS for a lossless replay and FAIL for a truncated capture;
* the CLI surface (``repro --version``, ``repro list``, ``repro replay
  loopback/validate``, multi-file ``repro stream scan``) works end to end.
"""

import asyncio
import json

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.replay import (
    Collector,
    PacingConfig,
    Pacer,
    TokenBucket,
    decode_records,
    encode_batch,
    merged_pacing,
    run_loopback,
    synthesize_packets,
    validate_replay,
)
from repro.replay.wire import (
    KIND_FIN,
    RECORD_BYTES,
    pack_datagram,
    pack_hello,
    unpack_datagram,
    unpack_hello,
)
from repro.stream import scan_trace, scan_traces
from repro.stream.reader import PacketBatch
from repro.traces.io import PKT_HEADER, read_packet_trace, write_packet_trace

N_PACKETS = 50_000


@pytest.fixture(scope="module")
def trace():
    return synthesize_packets("fulltel", N_PACKETS, seed=42)


@pytest.fixture(scope="module")
def trace_path(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("replay") / "source.txt"
    write_packet_trace(trace, path)
    return path


@pytest.fixture(scope="module")
def small_trace():
    return synthesize_packets("fulltel", 3_000, seed=7)


class FakeTime:
    """Deterministic clock + sleep for pacing unit tests."""

    def __init__(self, start: float = 100.0):
        self.now = start
        self.sleeps: list[float] = []

    def clock(self) -> float:
        return self.now

    async def sleep(self, dt: float) -> None:
        self.sleeps.append(dt)
        self.now += dt


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWire:
    def _batch(self, n=100, seed=0):
        rng = np.random.default_rng(seed)
        return PacketBatch(
            timestamps=np.sort(rng.uniform(0, 1e6, n)),
            protocols=np.array(["TELNET", "FTPDATA"] * (n // 2), dtype=object),
            connection_ids=rng.integers(-1, 1000, n),
            directions=rng.integers(0, 2, n).astype(np.int8),
            sizes=rng.integers(1, 65536, n),
            user_data=rng.integers(0, 2, n).astype(bool),
        )

    def test_roundtrip_is_exact(self):
        batch = self._batch()
        buf = encode_batch(batch)
        assert len(buf) == 100 * RECORD_BYTES
        out = decode_records(buf)
        assert np.array_equal(out.timestamps, batch.timestamps)
        assert out.timestamps.dtype == np.float64  # bit-exact floats
        assert list(out.protocols) == list(batch.protocols)
        assert np.array_equal(out.connection_ids, batch.connection_ids)
        assert np.array_equal(out.directions, batch.directions)
        assert np.array_equal(out.sizes, batch.sizes)
        assert np.array_equal(out.user_data, batch.user_data)

    def test_oversize_protocol_rejected(self):
        batch = self._batch(n=2)
        batch.protocols[0] = "X" * 13
        with pytest.raises(ValueError, match="exceeds"):
            encode_batch(batch)

    def test_partial_record_rejected(self):
        with pytest.raises(ValueError, match="whole number"):
            decode_records(b"\x00" * (RECORD_BYTES + 1))

    def test_hello_roundtrip(self):
        assert unpack_hello(pack_hello(7)) == 7
        with pytest.raises(ValueError, match="magic"):
            unpack_hello(b"XXXX" + pack_hello(0)[4:])

    def test_datagram_roundtrip(self):
        payload = encode_batch(self._batch(n=4))
        kind, flow, seq, out = unpack_datagram(
            pack_datagram(3, 99, payload)
        )
        assert (kind, flow, seq) == (0, 3, 99)
        assert out == payload
        kind, _, _, out = unpack_datagram(
            pack_datagram(3, 100, b"", kind=KIND_FIN)
        )
        assert kind == KIND_FIN and out == b""


# ----------------------------------------------------------------------
# Pacing
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_average_rate_converges(self):
        ft = FakeTime()
        bucket = TokenBucket(100.0, depth=10.0, clock=ft.clock,
                             sleep=ft.sleep)

        async def drive():
            for _ in range(20):
                await bucket.acquire(50.0)

        t0 = ft.now
        asyncio.run(drive())
        elapsed = ft.now - t0
        # 1000 records at 100/s with a 10-record burst allowance.
        assert elapsed == pytest.approx(1000 / 100.0 - 10 / 100.0, rel=1e-9)

    def test_single_oversized_acquire_waits(self):
        ft = FakeTime()
        bucket = TokenBucket(1000.0, depth=64.0, clock=ft.clock,
                             sleep=ft.sleep)
        asyncio.run(bucket.acquire(10_000.0))
        # Even ONE batch far beyond the depth waits out its rate budget.
        assert sum(ft.sleeps) == pytest.approx(10_000 / 1000 - 64 / 1000)

    def test_idle_credit_is_capped_at_depth(self):
        ft = FakeTime()
        bucket = TokenBucket(100.0, depth=10.0, clock=ft.clock,
                             sleep=ft.sleep)
        asyncio.run(bucket.acquire(10.0))
        ft.now += 1000.0  # long idle must not accrue unbounded credit
        t0 = ft.now
        asyncio.run(bucket.acquire(100.0))
        assert ft.now - t0 == pytest.approx((100 - 10) / 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, depth=0.0)

    def test_acquire_waits_bit_identical_to_pre_refactor_bucket(self):
        # The TAT arithmetic moved into repro.shaping.gcra.GcraCore; this
        # pins the asyncio bucket to the exact pre-refactor float math.
        class LegacyBucket:
            """The bucket as it was before the GCRA core extraction."""

            def __init__(self, rate, depth, *, clock, sleep):
                self._rate = rate
                self._depth = depth
                self._tat = None
                self._clock = clock
                self._sleep = sleep

            async def acquire(self, n=1.0):
                now = self._clock()
                if self._tat is None:
                    self._tat = now
                burst_allowance = self._depth / self._rate
                self._tat = max(self._tat, now) + n / self._rate
                wait = self._tat - now - burst_allowance
                if wait > 0:
                    await self._sleep(wait)

        rng = np.random.default_rng(5)
        for rate, depth in [(100.0, 10.0), (3.7, 0.9), (1000.0, 64.0)]:
            ft_new, ft_old = FakeTime(), FakeTime()
            new = TokenBucket(rate, depth, clock=ft_new.clock,
                              sleep=ft_new.sleep)
            old = LegacyBucket(rate, depth, clock=ft_old.clock,
                               sleep=ft_old.sleep)
            ns = rng.uniform(0.1, 200.0, 50)
            idles = rng.uniform(0.0, 5.0, 50)

            async def drive(bucket, ft):
                for n, idle in zip(ns, idles):
                    await bucket.acquire(float(n))
                    ft.now += float(idle)

            asyncio.run(drive(new, ft_new))
            asyncio.run(drive(old, ft_old))
            assert ft_new.sleeps == ft_old.sleeps  # exact, not approx


class TestPacer:
    def test_drift_corrected_targets(self):
        ft = FakeTime()
        pacer = Pacer(PacingConfig(speed=2.0), clock=ft.clock,
                      sleep=ft.sleep)

        async def drive():
            for ts in [0.0, 1.0, 2.0, 3.0]:
                await pacer.pace(ts)

        asyncio.run(drive())
        # speed=2: one trace-second every 0.5 wall-seconds, from the origin.
        assert ft.sleeps == pytest.approx([0.5, 0.5, 0.5])
        assert pacer.stats.n_late == 0
        assert pacer.stats.percentiles()["max"] == 0.0

    def test_never_sleeps_after_deadline(self):
        ft = FakeTime()
        pacer = Pacer(PacingConfig(speed=1.0), clock=ft.clock,
                      sleep=ft.sleep)

        async def drive():
            await pacer.pace(0.0)
            ft.now += 10.0  # stall: next deadline is long past
            return await pacer.pace(1.0)

        error = asyncio.run(drive())
        assert error == pytest.approx(9.0)
        assert ft.sleeps == []  # late records go out immediately
        assert pacer.stats.n_late == 1

    def test_speed_zero_is_fast_path(self):
        ft = FakeTime()
        config = PacingConfig(speed=0.0)
        pacer = Pacer(config, clock=ft.clock, sleep=ft.sleep)
        assert not config.paced
        assert pacer.fast_path

        async def drive():
            await pacer.pace(0.0)
            await pacer.admit_batch(1000)

        asyncio.run(drive())
        assert ft.sleeps == []
        assert pacer.stats.n_sent == 1001

    def test_rate_cap_disables_fast_path(self):
        pacer = Pacer(PacingConfig(speed=0.0, rate_cap=100.0))
        assert not pacer.fast_path
        assert pacer.bucket is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PacingConfig(speed=-1.0)
        with pytest.raises(ValueError):
            PacingConfig(rate_cap=0.0)


# ----------------------------------------------------------------------
# Loopback over real sockets
# ----------------------------------------------------------------------
class TestLoopback:
    def test_speed0_tcp_capture_is_byte_identical(self, trace_path,
                                                  tmp_path):
        capture = tmp_path / "capture.txt"
        result = run_loopback(
            str(trace_path), capture_path=capture,
            pacing=PacingConfig(speed=0.0),
        )
        assert result.n_sent == N_PACKETS
        assert result.zero_loss
        assert capture.read_bytes() == trace_path.read_bytes()

    def test_multiflow_preserves_record_multiset(self, trace, tmp_path):
        capture = tmp_path / "capture4.txt"
        result = run_loopback(
            trace, capture_path=capture,
            pacing=PacingConfig(speed=0.0), flows=4,
        )
        assert len(result.flow_results) == 4
        assert result.zero_loss
        got = read_packet_trace(capture)
        assert np.array_equal(np.sort(got.timestamps),
                              np.sort(trace.timestamps))
        assert np.array_equal(np.sort(got.connection_ids),
                              np.sort(trace.connection_ids))

    def test_speed1000_pacing_error_bounded(self, small_trace, tmp_path):
        result = run_loopback(
            small_trace, capture_path=tmp_path / "paced.txt",
            pacing=PacingConfig(speed=1000.0),
        )
        assert result.zero_loss
        pacing = merged_pacing(result.flow_results)
        assert pacing["n_paced"] == len(small_trace)
        # Generous bound: scheduling error stays well under 50ms even on
        # loaded CI machines; locally p99 is ~1-2ms.
        assert pacing["error_p99_s"] < 0.05

    def test_udp_speed0_is_lossless_locally(self, small_trace, tmp_path):
        result = run_loopback(
            small_trace, capture_path=tmp_path / "udp.txt",
            pacing=PacingConfig(speed=0.0), transport="udp",
        )
        assert result.n_sent == len(small_trace)
        assert result.n_received == result.n_sent
        got = read_packet_trace(tmp_path / "udp.txt")
        assert np.array_equal(np.sort(got.timestamps),
                              np.sort(small_trace.timestamps))

    def test_rate_cap_slows_the_send(self, tmp_path):
        trace = synthesize_packets("fulltel", 2_000, seed=11)
        result = run_loopback(
            trace, capture_path=tmp_path / "capped.txt",
            pacing=PacingConfig(speed=0.0, rate_cap=10_000.0),
        )
        assert result.zero_loss
        # 2000 packets at <= 10k/s (64-record burst): >= ~0.19s of wall.
        assert result.wall_s >= 0.15

    def test_drop_policy_counts_shed_records(self):
        async def drive():
            collector = Collector(policy="drop", queue_depth=1)
            collector._loop = asyncio.get_running_loop()
            collector._queue.put_nowait((0, b"", 0.0))  # fill the queue
            await collector._enqueue(0, b"\x00" * (2 * RECORD_BYTES), 1.0)
            return collector.flows[0].dropped_records

        assert asyncio.run(drive()) == 2

    def test_collector_validation(self):
        with pytest.raises(ValueError, match="policy"):
            Collector(policy="tail-drop")
        with pytest.raises(ValueError, match="queue_depth"):
            Collector(queue_depth=0)

    def _wire_batch(self, n=64, seed=3):
        rng = np.random.default_rng(seed)
        return PacketBatch(
            timestamps=np.sort(rng.uniform(0, 100.0, n)),
            protocols=np.array(["TELNET"] * n, dtype=object),
            connection_ids=rng.integers(0, 10, n),
            directions=rng.integers(0, 2, n).astype(np.int8),
            sizes=rng.integers(1, 1500, n),
            user_data=np.zeros(n, dtype=bool),
        )

    def _drain(self, collector, blocks):
        """Run the write loop over pre-enqueued blocks to completion."""
        async def drive():
            collector._loop = asyncio.get_running_loop()
            for block in blocks:
                await collector._enqueue(0, block, 0.0)
            collector._queue.put_nowait(None)
            await collector._write_loop()
            return collector.report()

        return asyncio.run(drive())

    def test_observer_receives_each_batch(self):
        batch = self._wire_batch()
        seen = []
        collector = Collector(observer=seen.append)
        report = self._drain(collector, [encode_batch(batch)] * 3)
        assert len(seen) == 3
        assert np.array_equal(seen[0].timestamps, batch.timestamps)
        assert report.observer_errors == 0
        assert report.n_packets == 3 * len(batch)

    def test_observer_errors_never_stall_the_drain(self):
        # A broken observer must not lose packets or kill the write loop;
        # its failures are counted and swallowed.
        def broken(batch):
            raise RuntimeError("observer exploded")

        batch = self._wire_batch()
        collector = Collector(observer=broken)
        report = self._drain(collector, [encode_batch(batch)] * 4)
        assert report.observer_errors == 4
        assert report.n_packets == 4 * len(batch)
        assert report.dropped_records == 0
        assert report.payload()["observer_errors"] == 4

    def test_set_observer_validates_and_clears(self):
        collector = Collector()
        with pytest.raises(TypeError, match="callable"):
            collector.set_observer("not-callable")
        with pytest.raises(TypeError, match="callable"):
            Collector(observer=42)
        collector.set_observer(lambda batch: None)
        assert collector.observer is not None
        collector.set_observer(None)
        assert collector.observer is None


# ----------------------------------------------------------------------
# Closed-loop validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_lossless_replay_passes(self, trace, trace_path):
        report = validate_replay(trace, str(trace_path))
        assert report.ok
        assert report.packets_match
        payload = report.payload()
        assert payload["ok"] is True
        assert payload["source"]["n_packets"] == N_PACKETS
        assert payload["capture"]["gap_beta"] == pytest.approx(
            payload["source"]["gap_beta"]
        )
        assert "PASS" in report.render()

    def test_truncated_capture_fails(self, trace_path, tmp_path):
        lines = trace_path.read_text().splitlines()
        truncated = tmp_path / "truncated.txt"
        truncated.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        report = validate_replay(str(trace_path), str(truncated))
        assert not report.packets_match
        assert not report.ok
        assert "FAIL" in report.render()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"
        assert repro.__version__.count(".") == 2

    def test_list_includes_descriptions(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.strip()]
        assert len(lines) > 10
        # every row is "name  description", description non-empty
        for ln in lines:
            name, rest = ln.split(None, 1)
            assert rest.strip()

    def test_replay_loopback_json_and_bench(self, tmp_path, capsys):
        rc = main([
            "replay", "loopback", "--packets", "2000", "--seed", "5",
            "--model", "fulltel", "--json", "--out", str(tmp_path),
            "--validate",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["zero_loss"] is True
        assert payload["n_sent"] == 2000
        assert payload["validation"]["ok"] is True
        bench = json.loads((tmp_path / "BENCH_replay.json").read_text())
        assert bench["bench"] == "replay"
        assert bench["packets_per_s"] > 0
        assert "error_p99_s" in bench["pacing"]
        assert "queue_high_water" in bench

    def test_replay_validate_command(self, trace_path, tmp_path, capsys):
        capture = tmp_path / "cap.txt"
        rc = main([
            "replay", "loopback", "--trace", str(trace_path),
            "--capture", str(capture),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main(["replay", "validate", str(trace_path), str(capture)])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_replay_source_args_are_validated(self):
        with pytest.raises(SystemExit):
            main(["replay", "loopback"])  # neither --trace nor --packets
        with pytest.raises(SystemExit):
            main(["replay", "loopback", "--packets", "10", "--model",
                  "no-such-model"])


# ----------------------------------------------------------------------
# Multi-file stream scan
# ----------------------------------------------------------------------
class TestMultiFileScan:
    #: bench keys that legitimately differ between one file and two
    #: (timing, paths, chunking) — everything else must be identical.
    NON_STATISTICAL = {
        "path", "chunks", "n_chunks", "n_bytes", "total_wall_s",
        "rows_per_s", "bytes_per_s", "peak_rss_kb",
    }

    @pytest.fixture()
    def split_paths(self, trace_path, tmp_path):
        lines = trace_path.read_text().splitlines()
        header, body = lines[0], lines[1:]
        assert header == PKT_HEADER
        half = len(body) // 2
        a = tmp_path / "part_a.txt"
        b = tmp_path / "part_b.txt"
        a.write_text("\n".join([header] + body[:half]) + "\n")
        b.write_text("\n".join([header] + body[half:]) + "\n")
        return a, b

    def test_merged_scan_equals_whole_scan(self, trace_path, split_paths):
        a, b = split_paths
        whole = scan_trace(str(trace_path)).bench_payload()
        merged = scan_traces([str(a), str(b)]).bench_payload()
        for key in set(whole) - self.NON_STATISTICAL:
            assert merged[key] == whole[key], key

    def test_single_path_list_matches_scalar(self, trace_path):
        one = scan_traces([str(trace_path)]).bench_payload()
        scalar = scan_trace(str(trace_path)).bench_payload()
        for key in set(scalar) - {"total_wall_s", "rows_per_s",
                                  "bytes_per_s", "chunks", "peak_rss_kb"}:
            assert one[key] == scalar[key], key

    def test_cli_accepts_multiple_paths(self, split_paths, capsys):
        a, b = split_paths
        assert main(["stream", "scan", str(a), str(b), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_records"] == N_PACKETS
