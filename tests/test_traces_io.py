"""Round-trip tests for trace I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    ConnectionRecord,
    ConnectionTrace,
    Direction,
    PacketRecord,
    PacketTrace,
    read_connection_trace,
    read_packet_trace,
    write_connection_trace,
    write_packet_trace,
)


class TestConnectionIO:
    def test_roundtrip(self, tmp_path):
        recs = [
            ConnectionRecord(1.25, 3.5, "TELNET", 10, 20, 1, 2, None),
            ConnectionRecord(0.0, 1.0, "FTPDATA", 0, 512, 3, 4, 7),
        ]
        path = tmp_path / "conns.txt"
        write_connection_trace(ConnectionTrace("x", recs), path)
        back = read_connection_trace(path)
        assert len(back) == 2
        assert back.record(0) == recs[1]  # sorted by start time
        assert back.record(1) == recs[0]

    def test_name_from_filename(self, tmp_path):
        path = tmp_path / "LBL-1.txt"
        write_connection_trace(ConnectionTrace("orig", []), path)
        assert read_connection_trace(path).name == "LBL-1"

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("not a header\n")
        with pytest.raises(ValueError):
            read_connection_trace(p)

    def test_bad_field_count(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("#repro-connections v1\n1.0 2.0 TELNET\n")
        with pytest.raises(ValueError):
            read_connection_trace(p)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e5),
                st.floats(min_value=0, max_value=1e4),
                st.sampled_from(["TELNET", "FTP", "FTPDATA", "SMTP"]),
                st.integers(min_value=0, max_value=10**9),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, rows):
        import tempfile

        recs = [
            ConnectionRecord(round(t, 6), round(d, 6), p, b)
            for t, d, p, b in rows
        ]
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/t.txt"
            write_connection_trace(ConnectionTrace("x", recs), path)
            back = read_connection_trace(path)
        assert len(back) == len(recs)
        assert back.total_bytes() == sum(r.bytes_orig for r in recs)


class TestPacketIO:
    def test_roundtrip(self, tmp_path):
        pkts = [
            PacketRecord(0.5, "TELNET", 1, Direction.ORIGINATOR, 1, True),
            PacketRecord(1.5, "FTPDATA", 2, Direction.RESPONDER, 512, False),
        ]
        path = tmp_path / "pkts.txt"
        write_packet_trace(PacketTrace("x", pkts), path)
        back = read_packet_trace(path)
        assert len(back) == 2
        assert back.record(0) == pkts[0]
        assert back.record(1) == pkts[1]

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("#repro-connections v1\n")
        with pytest.raises(ValueError):
            read_packet_trace(p)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_packet_trace(PacketTrace("x", []), path)
        assert len(read_packet_trace(path)) == 0


class TestTimestampPrecision:
    """Regression: the writers once used ``%.6f``, which collapses the
    sub-microsecond spacing of closely spaced packets at epoch-magnitude
    timestamps.  ``repr`` shortest-round-trip formatting must preserve
    every float bit-for-bit."""

    def test_epoch_magnitude_roundtrip_exact(self, tmp_path):
        base = 1_400_000_000.0  # epoch seconds, where %.6f loses bits
        step = float(np.nextafter(base, np.inf))  # one ulp (~2.4e-7 s)
        ts = [base, step, float(np.nextafter(step, np.inf)), base + 0.1]
        pkts = [
            PacketRecord(t, "TELNET", 1, Direction.ORIGINATOR, 1, True)
            for t in ts
        ]
        path = tmp_path / "epoch.txt"
        write_packet_trace(PacketTrace("x", pkts), path)
        back = read_packet_trace(path)
        assert back.timestamps.tolist() == ts  # bit-identical
        assert np.all(np.diff(back.timestamps) > 0)  # ordering survives

    def test_connection_times_roundtrip_exact(self, tmp_path):
        recs = [
            ConnectionRecord(1_400_000_000.123456789, 0.1 + 2**-40,
                             "FTP", 1, 2, 3, 4, None),
        ]
        path = tmp_path / "epoch.txt"
        write_connection_trace(ConnectionTrace("x", recs), path)
        back = read_connection_trace(path)
        assert back.record(0).start_time == recs[0].start_time
        assert back.record(0).duration == recs[0].duration

    @given(st.floats(min_value=0, max_value=2e9, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_any_float_timestamp_roundtrips(self, t):
        import tempfile

        pkts = [PacketRecord(t, "TELNET", 1, Direction.ORIGINATOR, 1, True)]
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/p.txt"
            write_packet_trace(PacketTrace("x", pkts), path)
            back = read_packet_trace(path)
        assert back.timestamps[0] == t


class TestGzipTransparency:
    def test_packet_gz_roundtrip(self, tmp_path):
        import gzip

        pkts = [
            PacketRecord(0.5, "TELNET", 1, Direction.ORIGINATOR, 1, True),
            PacketRecord(1.5, "FTPDATA", 2, Direction.RESPONDER, 512, False),
        ]
        path = tmp_path / "pkts.txt.gz"
        write_packet_trace(PacketTrace("x", pkts), path)
        with open(path, "rb") as fh:  # really compressed on disk
            assert fh.read(2) == b"\x1f\x8b"
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("#repro-packets")
        back = read_packet_trace(path)
        assert len(back) == 2
        assert back.record(0) == pkts[0]
        assert back.name == "pkts"  # .gz stripped from the derived name

    def test_connection_gz_roundtrip(self, tmp_path):
        recs = [ConnectionRecord(1.25, 3.5, "TELNET", 10, 20, 1, 2, None)]
        path = tmp_path / "conns.txt.gz"
        write_connection_trace(ConnectionTrace("x", recs), path)
        back = read_connection_trace(path)
        assert back.record(0) == recs[0]

    def test_gz_matches_plain(self, tmp_path):
        pkts = [
            PacketRecord(i * 0.125, "SMTP", i, Direction.ORIGINATOR, 40, False)
            for i in range(50)
        ]
        plain, packed = tmp_path / "p.txt", tmp_path / "p.txt.gz"
        write_packet_trace(PacketTrace("x", pkts), plain)
        write_packet_trace(PacketTrace("x", pkts), packed)
        a, b = read_packet_trace(plain), read_packet_trace(packed)
        assert np.array_equal(a.timestamps, b.timestamps)
        assert np.array_equal(a.sizes, b.sizes)


class TestPacketIOProperty:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e4),
                st.sampled_from(["TELNET", "FTPDATA"]),
                st.integers(min_value=0, max_value=10**4),
                st.booleans(),
                st.integers(min_value=0, max_value=1500),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, rows):
        import tempfile

        pkts = [
            PacketRecord(round(t, 6), proto, cid,
                         Direction.RESPONDER if flag else Direction.ORIGINATOR,
                         size, flag)
            for t, proto, cid, flag, size in rows
        ]
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/p.txt"
            write_packet_trace(PacketTrace("x", pkts), path)
            back = read_packet_trace(path)
        assert len(back) == len(pkts)
        assert int(back.sizes.sum()) == sum(p.size for p in pkts)
        assert int(back.user_data.sum()) == sum(p.user_data for p in pkts)
