"""Round-trip tests for trace I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    ConnectionRecord,
    ConnectionTrace,
    Direction,
    PacketRecord,
    PacketTrace,
    read_connection_trace,
    read_packet_trace,
    write_connection_trace,
    write_packet_trace,
)


class TestConnectionIO:
    def test_roundtrip(self, tmp_path):
        recs = [
            ConnectionRecord(1.25, 3.5, "TELNET", 10, 20, 1, 2, None),
            ConnectionRecord(0.0, 1.0, "FTPDATA", 0, 512, 3, 4, 7),
        ]
        path = tmp_path / "conns.txt"
        write_connection_trace(ConnectionTrace("x", recs), path)
        back = read_connection_trace(path)
        assert len(back) == 2
        assert back.record(0) == recs[1]  # sorted by start time
        assert back.record(1) == recs[0]

    def test_name_from_filename(self, tmp_path):
        path = tmp_path / "LBL-1.txt"
        write_connection_trace(ConnectionTrace("orig", []), path)
        assert read_connection_trace(path).name == "LBL-1"

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("not a header\n")
        with pytest.raises(ValueError):
            read_connection_trace(p)

    def test_bad_field_count(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("#repro-connections v1\n1.0 2.0 TELNET\n")
        with pytest.raises(ValueError):
            read_connection_trace(p)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e5),
                st.floats(min_value=0, max_value=1e4),
                st.sampled_from(["TELNET", "FTP", "FTPDATA", "SMTP"]),
                st.integers(min_value=0, max_value=10**9),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, rows):
        import tempfile

        recs = [
            ConnectionRecord(round(t, 6), round(d, 6), p, b)
            for t, d, p, b in rows
        ]
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/t.txt"
            write_connection_trace(ConnectionTrace("x", recs), path)
            back = read_connection_trace(path)
        assert len(back) == len(recs)
        assert back.total_bytes() == sum(r.bytes_orig for r in recs)


class TestPacketIO:
    def test_roundtrip(self, tmp_path):
        pkts = [
            PacketRecord(0.5, "TELNET", 1, Direction.ORIGINATOR, 1, True),
            PacketRecord(1.5, "FTPDATA", 2, Direction.RESPONDER, 512, False),
        ]
        path = tmp_path / "pkts.txt"
        write_packet_trace(PacketTrace("x", pkts), path)
        back = read_packet_trace(path)
        assert len(back) == 2
        assert back.record(0) == pkts[0]
        assert back.record(1) == pkts[1]

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("#repro-connections v1\n")
        with pytest.raises(ValueError):
            read_packet_trace(p)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_packet_trace(PacketTrace("x", []), path)
        assert len(read_packet_trace(path)) == 0


class TestPacketIOProperty:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e4),
                st.sampled_from(["TELNET", "FTPDATA"]),
                st.integers(min_value=0, max_value=10**4),
                st.booleans(),
                st.integers(min_value=0, max_value=1500),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, rows):
        import tempfile

        pkts = [
            PacketRecord(round(t, 6), proto, cid,
                         Direction.RESPONDER if flag else Direction.ORIGINATOR,
                         size, flag)
            for t, proto, cid, flag, size in rows
        ]
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/p.txt"
            write_packet_trace(PacketTrace("x", pkts), path)
            back = read_packet_trace(path)
        assert len(back) == len(pkts)
        assert int(back.sizes.sum()) == sum(p.size for p in pkts)
        assert int(back.user_data.sum()) == sum(p.user_data for p in pkts)
