"""Tests for the visual self-similarity metric and self-similar
cross-traffic generation (Section VII-D)."""

import numpy as np
import pytest

from repro.arrivals import (
    homogeneous_poisson,
    pareto_renewal_counts,
    self_similar_cross_traffic,
)
from repro.queueing import fifo_queue
from repro.selfsim import (
    CountProcess,
    fgn_sample,
    standardized_aggregate,
    visual_self_similarity,
    whittle_estimate,
)


class TestStandardizedAggregate:
    def test_zero_mean_unit_sd(self):
        rng = np.random.default_rng(1)
        z = standardized_aggregate(rng.poisson(10, 5000).astype(float), 5)
        assert z.mean() == pytest.approx(0.0, abs=1e-9)
        assert z.std() == pytest.approx(1.0, abs=1e-9)

    def test_constant_raises(self):
        with pytest.raises(ValueError):
            standardized_aggregate(np.ones(100), 2)


class TestVisualSimilarity:
    def test_fgn_more_self_similar_than_poisson(self):
        """The Figs. 14-15 / [28] argument, quantified."""
        x_fgn = fgn_sample(65536, 0.85, seed=1) + 20.0
        rng = np.random.default_rng(2)
        x_poi = rng.poisson(20, 65536).astype(float)
        s_fgn = visual_self_similarity(x_fgn).score
        s_poi = visual_self_similarity(x_poi).score
        assert s_fgn < 0.6 * s_poi

    def test_pareto_renewal_keeps_its_look(self):
        """Appendix C's pseudo-self-similar counts keep a similar burst
        marginal across scales."""
        counts = pareto_renewal_counts(40000, 50.0, shape=1.0, seed=3)
        res = visual_self_similarity(counts.astype(float), levels=(1, 4, 16))
        assert res.score < 0.5

    def test_accepts_count_process(self):
        x = fgn_sample(8192, 0.7, seed=4) + 10.0
        res = visual_self_similarity(CountProcess(x, 0.1), levels=(1, 4))
        assert res.pairwise_distances.size == 1

    def test_rows(self):
        x = fgn_sample(8192, 0.7, seed=5) + 10.0
        rows = visual_self_similarity(x, levels=(1, 2, 4)).rows()
        assert rows[0]["level_from"] == 1 and rows[1]["level_to"] == 4

    def test_validation(self):
        x = fgn_sample(1024, 0.7, seed=6) + 10.0
        with pytest.raises(ValueError):
            visual_self_similarity(x, levels=(4, 1))
        with pytest.raises(ValueError):
            visual_self_similarity(x, levels=(1,))
        with pytest.raises(ValueError):
            visual_self_similarity(x, levels=(1, 512))  # too coarse


class TestCrossTraffic:
    def test_mean_rate_near_target(self):
        t = self_similar_cross_traffic(40.0, 3000.0, seed=1)
        assert len(t) / 3000.0 == pytest.approx(40.0, rel=0.2)

    def test_counts_inherit_hurst(self):
        t = self_similar_cross_traffic(50.0, 4000.0, hurst=0.9,
                                       burstiness=0.5, seed=2)
        cp = CountProcess.from_times(t, 1.0, start=0.0, end=4000.0)
        assert whittle_estimate(cp.counts).hurst > 0.75

    def test_zero_burstiness_is_poisson(self):
        t = self_similar_cross_traffic(50.0, 4000.0, burstiness=0.0, seed=3)
        cp = CountProcess.from_times(t, 1.0, start=0.0, end=4000.0)
        assert cp.index_of_dispersion == pytest.approx(1.0, abs=0.15)
        assert whittle_estimate(cp.counts).hurst < 0.62

    def test_sorted_in_window(self):
        t = self_similar_cross_traffic(10.0, 500.0, seed=4)
        assert np.all(np.diff(t) >= 0)
        assert np.all((t >= 0) & (t < 500.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            self_similar_cross_traffic(0.0, 10.0)
        with pytest.raises(ValueError):
            self_similar_cross_traffic(1.0, 10.0, hurst=1.0)
        with pytest.raises(ValueError):
            self_similar_cross_traffic(1.0, 10.0, burstiness=-1.0)

    def test_lrd_cross_traffic_inflates_queueing_delay(self):
        """Section VII-D's use case, closing the loop with Section VIII:
        at equal mean load, LRD cross-traffic queues far worse."""
        duration = 4000.0
        t_lrd = self_similar_cross_traffic(50.0, duration, hurst=0.9,
                                           burstiness=0.6, seed=5)
        t_poi = homogeneous_poisson(len(t_lrd) / duration, duration, seed=6)
        service = 0.85 / (len(t_lrd) / duration)  # 85% load for both
        d_lrd = fifo_queue(t_lrd, service)
        d_poi = fifo_queue(t_poi, service)
        assert d_lrd.mean_delay > 2.0 * d_poi.mean_delay
