"""Tests for the queueing substrate and the Section IV delay experiment."""

import numpy as np
import pytest

from repro.arrivals import homogeneous_poisson
from repro.core import Scheme
from repro.queueing import (
    fifo_queue,
    md1_mean_wait,
    mm1_mean_wait,
    multiplexed_arrival_stream,
    telnet_delay_experiment,
)


class TestFifoQueue:
    def test_no_contention_no_wait(self):
        # arrivals 10 s apart, service 1 s: nobody waits
        res = fifo_queue(np.arange(0.0, 100.0, 10.0), 1.0)
        assert np.all(res.waiting_times == 0.0)
        assert res.mean_delay == pytest.approx(1.0)

    def test_back_to_back_arrivals_queue_up(self):
        # all arrive at t=0, service 1 s: waits 0,1,2,...
        res = fifo_queue(np.zeros(5), 1.0)
        assert res.waiting_times.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_lindley_recursion_hand_example(self):
        arrivals = np.array([0.0, 0.5, 3.0])
        res = fifo_queue(arrivals, 1.0)
        # W2 = max(0, 0 + 1 - 0.5) = 0.5; W3 = max(0, 0.5 + 1 - 2.5) = 0
        assert res.waiting_times.tolist() == [0.0, 0.5, 0.0]

    def test_per_packet_service_times(self):
        res = fifo_queue([0.0, 0.1], np.array([1.0, 0.5]))
        assert res.waiting_times[1] == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            fifo_queue([], 1.0)
        with pytest.raises(ValueError):
            fifo_queue([0.0, 1.0], np.array([1.0]))
        with pytest.raises(ValueError):
            fifo_queue([0.0], -1.0)


class TestDegenerateSpanConventions:
    """The documented utilization conventions for spans that vanish."""

    def test_single_arrival_scalar_service(self):
        res = fifo_queue([5.0], 2.0)
        assert res.utilization == 1.0
        assert res.waiting_times.tolist() == [0.0]

    def test_single_arrival_array_service(self):
        # n == 1 falls back to s[0] whether service came as scalar or array.
        res = fifo_queue([5.0], np.array([2.0]))
        assert res.utilization == 1.0

    def test_single_arrival_zero_service(self):
        res = fifo_queue([5.0], np.array([0.0]))
        assert res.utilization == 0.0

    def test_simultaneous_burst_positive_service_is_inf(self):
        res = fifo_queue(np.zeros(4), np.array([1.0, 0.0, 2.0, 0.0]))
        assert res.utilization == np.inf
        assert res.waiting_times.tolist() == [0.0, 1.0, 1.0, 3.0]

    def test_simultaneous_burst_zero_service_is_idle(self):
        res = fifo_queue(np.zeros(3), np.zeros(3))
        assert res.utilization == 0.0
        assert np.all(res.waiting_times == 0.0)

    def test_mm1_agreement(self):
        """Simulated M/M/1 mean wait matches the closed form."""
        rng = np.random.default_rng(1)
        arrivals = homogeneous_poisson(0.7, 200000.0, seed=rng)
        service = rng.exponential(1.0, size=arrivals.size)
        res = fifo_queue(arrivals, service)
        assert res.mean_wait == pytest.approx(mm1_mean_wait(0.7, 1.0), rel=0.1)

    def test_md1_agreement(self):
        arrivals = homogeneous_poisson(0.7, 200000.0, seed=2)
        res = fifo_queue(arrivals, 1.0)
        assert res.mean_wait == pytest.approx(md1_mean_wait(0.7, 1.0), rel=0.1)

    def test_md1_half_of_mm1(self):
        """Classic PK result: deterministic service halves the wait."""
        assert md1_mean_wait(0.5, 1.0) == pytest.approx(mm1_mean_wait(0.5, 1.0) / 2)

    def test_unstable_closed_forms_raise(self):
        with pytest.raises(ValueError):
            mm1_mean_wait(1.0, 1.0)
        with pytest.raises(ValueError):
            md1_mean_wait(2.0, 1.0)


class TestArrivalStream:
    def test_stream_sorted_in_window(self):
        t = multiplexed_arrival_stream(Scheme.TCPLIB, 10, 300.0, seed=3)
        assert np.all(np.diff(t) >= 0)
        assert np.all((t >= 0) & (t < 300.0))

    def test_rates_comparable_between_schemes(self):
        t1 = multiplexed_arrival_stream(Scheme.TCPLIB, 50, 600.0, seed=4)
        t2 = multiplexed_arrival_stream(Scheme.EXP, 50, 600.0, seed=5)
        assert t1.size == pytest.approx(t2.size, rel=0.25)

    def test_var_exp_rejected(self):
        with pytest.raises(ValueError):
            multiplexed_arrival_stream(Scheme.VAR_EXP, 5, 60.0)


class TestDelayExperiment:
    @pytest.fixture(scope="class")
    def comparison(self):
        return telnet_delay_experiment(
            n_connections=60, duration=1200.0, utilization=0.85, seed=6
        )

    def test_matched_utilization(self, comparison):
        assert comparison.tcplib.utilization == pytest.approx(0.85, rel=0.05)
        assert comparison.exponential.utilization == pytest.approx(0.85, rel=0.05)

    def test_tcplib_delay_larger(self, comparison):
        """Section IV's claim: exponential interarrivals significantly
        underestimate average packet delay."""
        assert comparison.mean_delay_ratio > 1.3

    def test_tail_delay_larger_too(self, comparison):
        assert comparison.p99_delay_ratio > 1.2

    def test_bad_utilization(self):
        with pytest.raises(ValueError):
            telnet_delay_experiment(utilization=1.0)
