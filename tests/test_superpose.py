"""Batched superposition kernels, shared-memory pool, and satellites.

The load-bearing claims:

* the batched ON/OFF kernel consumes the exact RNG streams of the frozen
  per-source loop and reproduces it bit for bit (every distribution
  pairing, every seed kind, any ``jobs``);
* the grouped entry reduces one sweep into rows bit-identical to
  standalone calls on the same child-stream ranges;
* the renewal kernel is exact for any chunking;
* ``pool_map_shared`` is shard-order deterministic and surfaces worker
  failures with the failing task index;
* ``OnOffSource.counts`` places edge-landing intervals per the binning
  convention and clamps the final bin;
* the fgn/farima embedding-eigenvalue caches change nothing numerically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.onoff import OnOffSource, multiplex_onoff
from repro.distributions.exponential import Exponential
from repro.distributions.pareto import Pareto
from repro.kernels import superpose_onoff, superpose_onoff_groups, superpose_renewal
from repro.kernels.reference import multiplex_onoff_loop, superpose_renewal_loop
from repro.selfsim.farima import _farima_embedding_eig, farima_sample
from repro.selfsim.fgn import _fgn_embedding_eig, fgn_sample
from repro.utils.pool import PoolTaskError, pool_map, pool_map_shared


class Constant:
    """Deterministic stand-in distribution (exercises the fallback path)."""

    def __init__(self, value):
        self.value = float(value)

    def sample(self, size, seed=None):
        # Consume the stream like a real sampler so the RNG protocol holds.
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        rng.random(size)
        return np.full(size, self.value)


PAIRINGS = {
    "pareto/pareto": OnOffSource.pareto(on_location=0.2, off_location=0.3),
    "exp/exp": OnOffSource(Exponential(0.4), Exponential(0.7)),
    "pareto/exp": OnOffSource(Pareto(0.2, 1.4), Exponential(0.5)),
    "exp/pareto": OnOffSource(Exponential(0.5), Pareto(0.3, 1.2)),
    "pareto/pareto-mixed": OnOffSource(Pareto(0.2, 1.2), Pareto(0.5, 1.8)),
    "constant/constant": OnOffSource(Constant(0.35), Constant(0.55)),
}


class TestOnOffLoopIdentity:
    @pytest.mark.parametrize("name", sorted(PAIRINGS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_bit_identical_to_frozen_loop(self, name, seed):
        src = PAIRINGS[name]
        for n_bins, w in [(64, 1.0), (40, 2.5)]:
            loop = multiplex_onoff_loop(60, n_bins, w, src, seed=seed)
            batched = superpose_onoff(60, n_bins, w, source=src, seed=seed,
                                      chunk=60)
            assert np.array_equal(batched, loop), (name, n_bins, w)

    def test_matches_multiplex_onoff(self):
        src = OnOffSource.pareto(on_location=0.1, off_location=0.1)
        assert np.array_equal(
            superpose_onoff(50, 32, 1.0, source=src, seed=5, chunk=50),
            multiplex_onoff(50, 32, 1.0, source=src, seed=5),
        )

    def test_generator_seed(self):
        src = PAIRINGS["pareto/pareto"]
        loop = multiplex_onoff_loop(
            25, 32, 1.0, src, seed=np.random.default_rng(9))
        batched = superpose_onoff(
            25, 32, 1.0, source=src, seed=np.random.default_rng(9), chunk=25)
        assert np.array_equal(batched, loop)

    def test_seedsequence_spawn_counter_parity(self):
        """A pre-advanced SeedSequence spawns the same children both ways."""
        src = PAIRINGS["exp/exp"]
        seq_a = np.random.SeedSequence(7)
        seq_a.spawn(5)  # advance the counter before handing it over
        seq_b = np.random.SeedSequence(7)
        seq_b.spawn(5)
        loop = multiplex_onoff_loop(20, 16, 1.0, src, seed=seq_a)
        batched = superpose_onoff(20, 16, 1.0, source=src, seed=seq_b,
                                  chunk=20)
        assert np.array_equal(batched, loop)

    def test_jobs_bit_identical_to_serial(self):
        src = PAIRINGS["pareto/exp"]
        serial = superpose_onoff(40, 32, 1.0, source=src, seed=2, chunk=8,
                                 jobs=1)
        fanned = superpose_onoff(40, 32, 1.0, source=src, seed=2, chunk=8,
                                 jobs=3)
        assert np.array_equal(serial, fanned)

    def test_chunking_reassociates_only(self):
        src = PAIRINGS["pareto/pareto"]
        a = superpose_onoff(64, 32, 1.0, source=src, seed=3, chunk=64)
        b = superpose_onoff(64, 32, 1.0, source=src, seed=3, chunk=17)
        assert np.allclose(a, b, rtol=1e-12)

    def test_generator_seed_rejected_with_jobs(self):
        with pytest.raises(ValueError, match="jobs > 1"):
            superpose_onoff(10, 8, 1.0, seed=np.random.default_rng(0),
                            jobs=2)

    @pytest.mark.parametrize("bad_bins", [-1, 2.5])
    def test_bad_bin_count(self, bad_bins):
        with pytest.raises((ValueError, TypeError)):
            superpose_onoff(10, bad_bins, 1.0, seed=0)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            superpose_onoff(0, 8, 1.0, seed=0)
        with pytest.raises(ValueError):
            superpose_onoff(10, 8, 1.0, seed=0, chunk=0)
        with pytest.raises(ValueError):
            superpose_onoff(10, 8, -1.0, seed=0)

    def test_zero_bins(self):
        assert superpose_onoff(5, 0, 1.0, seed=0).shape == (0,)

    def test_meta_counts_all_sources(self):
        meta: list = []
        superpose_onoff(30, 16, 1.0, seed=0, chunk=7, meta=meta)
        assert sum(m["sources"] for m in meta) == 30
        assert all(m["rounds"] >= 1 for m in meta)


class TestGroupedKernel:
    def test_rows_bit_identical_to_standalone(self):
        src = OnOffSource.pareto(on_location=0.1, off_location=0.1)
        n_groups, group_size = 6, 11
        rows = superpose_onoff_groups(n_groups, group_size, 24, 2.0,
                                      source=src, seed=4, chunk=30)
        for g in range(n_groups):
            seq = np.random.SeedSequence(4)
            if g:
                seq.spawn(g * group_size)  # advance to the group's children
            standalone = superpose_onoff(group_size, 24, 2.0, source=src,
                                         seed=seq, chunk=group_size)
            assert np.array_equal(rows[g], standalone), g

    def test_chunk_and_jobs_invariance(self):
        src = OnOffSource.pareto(on_location=0.2, off_location=0.2)
        base = superpose_onoff_groups(5, 8, 16, 1.0, source=src, seed=1,
                                      chunk=1000)
        for chunk, jobs in [(3, 1), (16, 1), (16, 3), (8, 2)]:
            other = superpose_onoff_groups(5, 8, 16, 1.0, source=src,
                                           seed=1, chunk=chunk, jobs=jobs)
            assert np.array_equal(base, other), (chunk, jobs)

    def test_validation(self):
        with pytest.raises(ValueError):
            superpose_onoff_groups(0, 4, 8, 1.0, seed=0)
        with pytest.raises(ValueError):
            superpose_onoff_groups(4, 0, 8, 1.0, seed=0)
        assert superpose_onoff_groups(3, 2, 0, 1.0, seed=0).shape == (3, 0)


class TestRenewalIdentity:
    @pytest.mark.parametrize("dist", [Pareto(1.0, 1.2), Exponential(0.8),
                                      Constant(0.9)])
    @pytest.mark.parametrize("chunk,jobs", [(13, 1), (1000, 1), (25, 3)])
    def test_exact_for_any_chunking(self, dist, chunk, jobs):
        loop = superpose_renewal_loop(50, 40, 2.0, dist, seed=6,
                                      gap_block=64)
        batched = superpose_renewal(50, 40, 2.0, gap_dist=dist, seed=6,
                                    chunk=chunk, jobs=jobs, gap_block=64)
        assert np.array_equal(batched, loop)

    def test_validation(self):
        with pytest.raises(ValueError):
            superpose_renewal(10, 8, 1.0, seed=0, gap_block=0)
        with pytest.raises(ValueError):
            superpose_renewal(10, -1, 1.0, seed=0)


class TestConservation:
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=2**32 - 1),
           st.sampled_from(sorted(PAIRINGS)))
    @settings(max_examples=25, deadline=None)
    def test_total_work_equals_clipped_on_time(self, n_sources, seed, name):
        """The aggregate conserves emitted work: sum over bins equals
        rate x total ON time clipped to the horizon, summed over the same
        child streams."""
        src = PAIRINGS[name]
        n_bins, w = 24, 1.5
        agg = superpose_onoff(n_sources, n_bins, w, source=src, seed=seed,
                              chunk=n_sources)
        duration = n_bins * w
        seq = np.random.SeedSequence(seed)
        total_on = 0.0
        for child in seq.spawn(n_sources):
            rng = np.random.default_rng(child)
            for start, end in src.intervals(duration, seed=rng):
                total_on += min(end, duration) - start
        assert np.isclose(agg.sum(), src.rate * total_on,
                          rtol=1e-9, atol=1e-9)


def _fill_slot(out, value, scale):
    out[:] = value * scale
    return {"value": value}


def _exploding_slot(out, index):
    if index == 2:
        raise RuntimeError("shard blew up")
    out[:] = index
    return {"index": index}


class TestPoolShared:
    def test_shard_order_is_task_order(self):
        tasks = [(v, 2.0) for v in range(6)]
        buf1, metas1 = pool_map_shared(_fill_slot, tasks, 1, shape=(4,))
        buf3, metas3 = pool_map_shared(_fill_slot, tasks, 3, shape=(4,))
        assert np.array_equal(buf1, buf3)
        assert metas1 == metas3 == [{"value": v} for v in range(6)]
        assert np.array_equal(buf1[:, 0], 2.0 * np.arange(6))

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_failure_carries_task_index(self, jobs):
        tasks = [(i,) for i in range(4)]
        with pytest.raises(PoolTaskError) as err:
            pool_map_shared(_exploding_slot, tasks, jobs, shape=(2,))
        assert err.value.index == 2
        assert "shard blew up" in str(err.value)

    def test_pool_map_strict_raises_with_index(self):
        def boom(i):
            if i == 1:
                raise ValueError("nope")
            return i

        outcomes = pool_map(boom, [(0,), (1,)], 1)
        assert outcomes[0] == 0 and isinstance(outcomes[1], ValueError)
        with pytest.raises(PoolTaskError) as err:
            pool_map(boom, [(0,), (1,)], 1, strict=True)
        assert err.value.index == 1


class TestCountsBinning:
    def _phase_seed(self, want_on):
        """A seed whose phase coin (first uniform draw) picks ``want_on``."""
        for seed in range(64):
            rng = np.random.default_rng(
                np.random.SeedSequence(seed).spawn(1)[0])
            if (rng.random() < 0.5) == want_on:
                return np.random.default_rng(
                    np.random.SeedSequence(seed).spawn(1)[0])
        raise AssertionError("no seed found")

    def test_edge_landing_interval_belongs_to_right_bin(self):
        """Periods of exactly one bin width: every boundary lands on an
        edge, and each ON period must fill exactly its own bin."""
        src = OnOffSource(Constant(0.25), Constant(0.25))
        work = src.counts(8, 0.25, seed=self._phase_seed(want_on=True))
        assert np.allclose(work, [0.25, 0, 0.25, 0, 0.25, 0, 0.25, 0])
        work = src.counts(8, 0.25, seed=self._phase_seed(want_on=False))
        assert np.allclose(work, [0, 0.25, 0, 0.25, 0, 0.25, 0, 0.25])

    def test_final_bin_clamp_on_rounding_start(self):
        """``start / bin_width`` can round up to ``n_bins`` for a start
        strictly inside the horizon; the clamp must land it in the last
        bin instead of overflowing."""
        n_bins, w = 34, 0.14338001753420282
        start = 4.874920596162895  # nextafter(n_bins * w, 0)
        assert start < n_bins * w  # inside the horizon...
        assert int(start / w) == n_bins  # ...but the quotient rounds up
        src = OnOffSource(Constant(start), Constant(start))
        # OFF phase first: the single ON interval is [start, duration).
        work = src.counts(n_bins, w, seed=self._phase_seed(want_on=False))
        assert work[:-1].sum() == 0.0
        assert work[-1] == pytest.approx(n_bins * w - start, abs=1e-12)
        # Batched kernel agrees bit for bit on the same construction.
        loop = multiplex_onoff_loop(4, n_bins, w, src, seed=11)
        batched = superpose_onoff(4, n_bins, w, source=src, seed=11, chunk=4)
        assert np.array_equal(batched, loop)


class TestEmbeddingCaches:
    def test_fgn_cache_bit_identical_and_hit(self):
        _fgn_embedding_eig.cache_clear()
        a = fgn_sample(256, 0.8, seed=0)
        info = _fgn_embedding_eig.cache_info()
        assert info.misses == 1 and info.hits == 0
        b = fgn_sample(256, 0.8, seed=0)
        assert _fgn_embedding_eig.cache_info().hits == 1
        assert np.array_equal(a, b)
        assert not _fgn_embedding_eig(256, 0.8, 1.0).flags.writeable

    def test_farima_cache_bit_identical_and_hit(self):
        _farima_embedding_eig.cache_clear()
        a = farima_sample(256, 0.3, seed=1)
        assert _farima_embedding_eig.cache_info().misses == 1
        b = farima_sample(256, 0.3, seed=1)
        assert _farima_embedding_eig.cache_info().hits == 1
        assert np.array_equal(a, b)
        assert not _farima_embedding_eig(256, 0.3, 1.0).flags.writeable

    def test_cache_key_distinguishes_parameters(self):
        x = fgn_sample(128, 0.7, seed=3)
        y = fgn_sample(128, 0.75, seed=3)
        assert not np.array_equal(x, y)
        z = fgn_sample(128, 0.7, sigma2=2.0, seed=3)
        assert not np.array_equal(x, z)
