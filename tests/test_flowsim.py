"""Flow-level simulator: topology, closure models, conservation, FIFO."""

import numpy as np
import pytest

from repro.flowsim import (
    Csa00,
    FlowScenario,
    FlowSimulator,
    FlowTable,
    Msmo97,
    Topology,
    UdpCbr,
    dumbbell_topology,
    line_topology,
    resolve_model,
    run_scenario,
    star_topology,
)
from repro.queueing import fifo_queue


def _table(n, span, topo_nodes, seed=0, sizes=None):
    rng = np.random.default_rng(seed)
    starts = np.sort(rng.uniform(0.0, span, n))
    if sizes is None:
        sizes = (rng.pareto(1.1, n) + 1.0) * 20_000.0
    src = rng.integers(0, topo_nodes, n)
    dst = (src + rng.integers(1, topo_nodes, n)) % topo_nodes
    return FlowTable.from_arrays(starts, sizes, src, dst)


class TestTopology:
    def test_line_routes_are_concatenated_hops(self):
        topo = line_topology(5, delay=0.01)
        path = topo.path(0, 4)
        assert len(path) == 4
        assert [topo.links[li].src for li in path] == [0, 1, 2, 3]
        assert topo.path_rtt(path) == pytest.approx(2 * 4 * 0.01)

    def test_reverse_direction_exists(self):
        topo = line_topology(3)
        back = topo.path(2, 0)
        assert [topo.links[li].dst for li in back] == [1, 0]

    def test_star_routes_cross_hub(self):
        topo = star_topology(4)
        path = topo.path(1, 3)
        assert len(path) == 2
        assert topo.links[path[0]].dst == 0

    def test_dumbbell_crosses_bottleneck(self):
        topo = dumbbell_topology(2, 2)
        path = topo.path(2, 4)  # left leaf -> right leaf
        mids = {(topo.links[li].src, topo.links[li].dst) for li in path}
        assert (0, 1) in mids

    def test_no_route_raises(self):
        topo = Topology(3)
        topo.add_link(0, 1, 1e6)
        with pytest.raises(ValueError, match="no route"):
            topo.path(0, 2)

    def test_path_loss_composes(self):
        topo = line_topology(3, loss=0.1)
        assert topo.path_loss(topo.path(0, 2)) == pytest.approx(
            1 - 0.9 * 0.9
        )

    def test_routing_is_deterministic_under_ties(self):
        # Two equal-delay routes 0->3: via 1 and via 2.  The settled
        # order is ascending node id, so the route through 1 wins.
        topo = Topology(4)
        topo.add_link(0, 1, 1e6, delay=0.01)
        topo.add_link(0, 2, 1e6, delay=0.01)
        topo.add_link(1, 3, 1e6, delay=0.01)
        topo.add_link(2, 3, 1e6, delay=0.01)
        path = topo.path(0, 3)
        assert topo.links[path[0]].dst == 1

    def test_set_capacities_rebuilds_links(self):
        topo = line_topology(3)
        topo.set_capacities(np.arange(1, topo.n_links + 1) * 1e5)
        assert topo.links[2].capacity == pytest.approx(3e5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(1)
        topo = Topology(2)
        with pytest.raises(ValueError):
            topo.add_link(0, 0, 1e6)
        with pytest.raises(ValueError):
            topo.add_link(0, 5, 1e6)


class TestTcpModels:
    def test_msmo97_scales_with_inverse_sqrt_loss(self):
        m = Msmo97(max_window=1e9)
        r1, _ = m(np.array([1e6]), 0.1, np.array([0.01]))
        r2, _ = m(np.array([1e6]), 0.1, np.array([0.04]))
        assert r1[0] == pytest.approx(2 * r2[0])

    def test_msmo97_window_cap_binds_at_low_loss(self):
        m = Msmo97(max_window=64.0)
        rates, lat = m(np.array([1e6]), 0.1, np.array([0.0]))
        assert rates[0] == pytest.approx(64.0 * 1460.0 / 0.1)
        assert lat[0] == pytest.approx(0.1)

    def test_csa00_short_flows_slower_than_steady_state(self):
        # A 2-segment flow cannot reach the msmo97 steady-state rate.
        c, m = Csa00(), Msmo97()
        small, _ = c(np.array([2 * 1460.0]), 0.1, np.array([0.02]))
        steady, _ = m(np.array([2 * 1460.0]), 0.1, np.array([0.02]))
        assert small[0] < steady[0]

    def test_csa00_rate_increases_with_size(self):
        c = Csa00()
        sizes = np.array([1460.0, 1460.0 * 32, 1460.0 * 1024])
        rates, _ = c(sizes, 0.1, np.full(3, 0.02))
        assert np.all(np.diff(rates) > 0)

    def test_csa00_latency_grows_with_loss(self):
        c = Csa00()
        _, lat_lo = c(np.array([1e5]), 0.1, np.array([0.001]))
        _, lat_hi = c(np.array([1e5]), 0.1, np.array([0.2]))
        assert lat_hi[0] > lat_lo[0]

    def test_udp_ignores_loss(self):
        u = UdpCbr(rate=5e4)
        rates, lat = u(np.array([1e6, 1e3]), 0.1, np.array([0.0, 0.5]))
        assert np.all(rates == 5e4)
        assert np.all(lat == 0.0)
        assert not u.responsive

    def test_resolve_model(self):
        assert isinstance(resolve_model("csa00"), Csa00)
        assert isinstance(resolve_model(Msmo97), Msmo97)
        inst = UdpCbr(rate=1.0)
        assert resolve_model(inst) is inst
        with pytest.raises(KeyError):
            resolve_model("nope")

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            Msmo97()(np.array([1e3]), 0.1, np.array([1.0]))


class TestFlowTable:
    def test_from_connections_filters_protocols(self):
        from repro.core.ftp import FtpSessionModel

        topo = line_topology(4)
        batch = FtpSessionModel(sessions_per_hour=300.0).synthesize_columns(
            1800.0, seed=5
        )
        flows = FlowTable.from_connections(batch, topo)
        n_data = int(np.sum(np.asarray(batch.protocols) == "FTPDATA"))
        assert len(flows) == n_data
        assert np.all(flows.src != flows.dst)
        assert np.all(flows.sizes >= 1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FlowTable(
                start_times=np.zeros(3),
                sizes=np.ones(2),
                src=np.zeros(3, dtype=int),
                dst=np.ones(3, dtype=int),
            )


class TestConservation:
    """Bytes in == bytes out, per link, exactly."""

    def test_bytes_conserved_on_every_link_fair(self):
        topo = line_topology(4, loss=0.01)
        flows = _table(5000, 600.0, 4, seed=1)
        res = FlowSimulator(topo, "fair").run(flows)
        assert res.n_completed == len(flows)
        # each link carries exactly the bytes of the flows routed over it
        for li, stats in enumerate(res.links):
            expected = float(res.flows.sizes[stats.flow_indices].sum())
            assert stats.bytes_transferred() == pytest.approx(
                expected, rel=1e-9
            )

    def test_bytes_conserved_on_every_link_fifo(self):
        topo = line_topology(4, loss=0.01)
        flows = _table(2000, 600.0, 4, seed=2)
        res = FlowSimulator(topo, "fifo").run(flows)
        for stats in res.links:
            expected = float(res.flows.sizes[stats.flow_indices].sum())
            assert stats.bytes_transferred() == pytest.approx(
                expected, rel=1e-9
            )

    def test_flow_count_conserved_along_paths(self):
        topo = line_topology(5)
        flows = _table(3000, 300.0, 5, seed=3)
        res = FlowSimulator(topo, "fair").run(flows)
        # every flow appears on every link of its path, nowhere else
        per_link = np.zeros(topo.n_links, dtype=int)
        for pid, path in enumerate(res.paths):
            n_on_path = int(np.sum(res.path_ids == pid))
            for li in path:
                per_link[li] += n_on_path
        assert [s.n_flows for s in res.links] == per_link.tolist()

    def test_byte_process_integrates_to_link_bytes(self):
        topo = line_topology(3)
        flows = _table(1000, 200.0, 3, seed=4)
        res = FlowSimulator(topo, "fair").run(flows)
        stats = res.links[0]
        end = float(stats.transfer_ends.max()) + 1.0
        proc = stats.byte_process(0.5, start=0.0, end=end)
        assert proc.total == pytest.approx(
            stats.bytes_transferred(), rel=1e-9
        )

    def test_horizon_clips_byte_process_exactly(self):
        topo = line_topology(3)
        flows = _table(1000, 200.0, 3, seed=5)
        res = FlowSimulator(topo, "fair").run(flows, horizon=100.0)
        stats = res.links[0]
        proc = stats.byte_process(1.0, start=0.0, end=100.0)
        assert proc.total == pytest.approx(
            stats.bytes_transferred(until=100.0), rel=1e-9
        )
        assert not res.completed.all()
        assert np.isnan(res.close_times[~res.completed]).all()


class TestFifoDegenerate:
    """A single-link FIFO topology IS Lindley's recursion."""

    def test_single_link_matches_fifo_queue(self):
        rng = np.random.default_rng(11)
        n = 4000
        capacity = 1e6
        starts = np.sort(rng.uniform(0.0, 60.0, n))
        sizes = rng.exponential(30_000.0, n)
        topo = Topology(2)
        topo.add_link(0, 1, capacity, delay=0.0, bidirectional=False)
        flows = FlowTable.from_arrays(
            starts, sizes, np.zeros(n, int), np.ones(n, int)
        )
        res = FlowSimulator(topo, "fifo").run(flows)
        ref = fifo_queue(starts, sizes / capacity)
        assert np.allclose(res.waits, ref.waiting_times)
        assert np.allclose(
            res.close_times, starts + ref.sojourn_times
        )
        # departure process: counts of whole-flow service completions
        proc = res.links[0].departure_process(
            1.0, end=float(res.close_times.max()) + 1.0
        )
        assert proc.total == n

    def test_fifo_departures_ordered_per_link(self):
        topo = line_topology(3)
        flows = _table(500, 50.0, 3, seed=6)
        res = FlowSimulator(topo, "fifo").run(flows)
        for stats in res.links:
            if stats.n_flows > 1:
                assert np.all(np.diff(stats.departure_times) >= 0)

    def test_departure_process_requires_fifo(self):
        topo = line_topology(3)
        flows = _table(100, 10.0, 3, seed=7)
        res = FlowSimulator(topo, "fair").run(flows)
        with pytest.raises(ValueError, match="fifo"):
            res.links[0].departure_process(1.0)


class TestFairDiscipline:
    def test_lone_flow_gets_model_rate(self):
        topo = line_topology(3, capacity=1e9, loss=0.02)
        flows = FlowTable.from_arrays(
            np.array([0.0]), np.array([1e6]), np.array([0]), np.array([2])
        )
        res = FlowSimulator(topo, "fair").run(flows)
        model = Msmo97()
        expected, _ = model(
            np.array([1e6]), np.array([res.rtts[0]]),
            np.array([res.losses[0]])
        )
        assert res.rates[0] == pytest.approx(expected[0])

    def test_simultaneous_flows_share_capacity(self):
        # Two flows opening together on a tight link: the second sees
        # the first as active and gets at most capacity / 2.
        topo = Topology(2)
        topo.add_link(0, 1, 1e4, delay=0.0, loss=0.0, bidirectional=False)
        flows = FlowTable.from_arrays(
            np.array([0.0, 0.0]), np.array([1e6, 1e6]),
            np.array([0, 0]), np.array([1, 1]),
        )
        res = FlowSimulator(topo, "fair").run(flows)
        assert res.fair_shares[0] == pytest.approx(1e4)
        assert res.fair_shares[1] == pytest.approx(5e3)

    def test_close_frees_capacity_before_same_instant_open(self):
        topo = Topology(2)
        topo.add_link(0, 1, 1e4, delay=0.0, loss=0.0, bidirectional=False)
        # flow 0 closes exactly at t=1.0 (rate 1e4, 1e4 bytes, zero
        # latency via udp model); flow 1 opens at t=1.0 and must see an
        # empty link.
        flows = FlowTable(
            start_times=np.array([0.0, 1.0]),
            sizes=np.array([1e4, 1e4]),
            src=np.array([0, 0]),
            dst=np.array([1, 1]),
            models=(UdpCbr(rate=1e4), Msmo97()),
            model_ids=np.array([0, 1]),
        )
        res = FlowSimulator(topo, "fair").run(flows)
        assert res.fair_shares[1] == pytest.approx(1e4)

    def test_unresponsive_flows_keep_model_rate(self):
        topo = Topology(2)
        topo.add_link(0, 1, 1e4, delay=0.0, bidirectional=False)
        flows = FlowTable(
            start_times=np.array([0.0, 0.1]),
            sizes=np.array([1e5, 1e5]),
            src=np.array([0, 0]),
            dst=np.array([1, 1]),
            models=(UdpCbr(rate=8e3),),
            model_ids=np.array([0, 0]),
        )
        res = FlowSimulator(topo, "fair").run(flows)
        assert np.allclose(res.rates, 8e3)  # not shared down

    def test_deterministic_across_runs(self):
        topo = line_topology(4, loss=0.01)
        flows = _table(2000, 120.0, 4, seed=8)
        a = FlowSimulator(topo, "fair").run(flows)
        b = FlowSimulator(topo, "fair").run(flows)
        assert np.array_equal(a.close_times, b.close_times)
        assert np.array_equal(a.rates, b.rates)

    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError, match="discipline"):
            FlowSimulator(line_topology(3), "weighted")

    def test_empty_flow_table_rejected(self):
        topo = line_topology(3)
        empty = FlowTable.from_arrays(
            np.zeros(0), np.zeros(0), np.zeros(0, int), np.zeros(0, int)
        )
        with pytest.raises(ValueError, match="no flows"):
            FlowSimulator(topo).run(empty)


class TestSketchExports:
    def test_completion_ladder_totals_link_bytes(self):
        topo = line_topology(3)
        flows = _table(500, 60.0, 3, seed=9)
        res = FlowSimulator(topo, "fair").run(flows)
        stats = res.links[0]
        ladder = stats.completion_ladder(
            1.0, end=float(stats.transfer_ends.max()) + 1.0
        )
        assert ladder.finalize().sum() == pytest.approx(
            stats.bytes_transferred(), rel=1e-9
        )

    def test_size_topk_matches_largest_flows(self):
        topo = line_topology(3)
        flows = _table(500, 60.0, 3, seed=10)
        res = FlowSimulator(topo, "fair").run(flows)
        stats = res.links[0]
        top = stats.size_topk(5).values
        sizes = res.flows.sizes[stats.flow_indices]
        assert np.allclose(np.sort(top), np.sort(sizes)[-5:])


class TestScenario:
    def test_heavy_tail_elevates_hurst_control_does_not(self):
        ftp = FlowScenario(
            topology="line", n_nodes=6, duration=1800.0,
            sessions_per_hour=1500.0, workload="ftp",
        ).run(seed=11)
        ctl = FlowScenario(
            topology="line", n_nodes=6, duration=1800.0,
            sessions_per_hour=1500.0, workload="exponential",
        ).run(seed=11)
        assert ftp.link_hurst and ctl.link_hurst
        assert min(ftp.link_hurst.values()) > 0.6
        assert ftp.mean_hurst > 0.7
        assert abs(ctl.mean_hurst - 0.5) < 0.12
        assert ftp.mean_hurst > ctl.mean_hurst + 0.15

    def test_run_scenario_overrides_and_render(self):
        out = run_scenario(
            topology="star", n_nodes=5, duration=600.0,
            sessions_per_hour=400.0,
        )
        text = out.render()
        assert "star" in text and "flows" in text
        summary = out.summary()
        assert summary["n_flows"] == out.result.n_flows

    def test_unknown_workload_and_topology_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            FlowScenario(workload="cbr")
        with pytest.raises(KeyError, match="unknown topology"):
            FlowScenario(topology="torus").run(seed=0)

    def test_experiment_entry_point(self):
        from repro.experiments import REGISTRY

        assert "flowsim" in REGISTRY


class TestShapingComposition:
    """In-network policers/shapers on links (repro.shaping integration)."""

    def _one_way_table(self, n=300, span=40.0, seed=3):
        rng = np.random.default_rng(seed)
        starts = np.sort(rng.uniform(0.0, span, n))
        sizes = rng.pareto(1.2, n) * 2e4 + 5e3
        return FlowTable.from_arrays(
            starts, sizes, np.full(n, 2), np.full(n, 3)
        )

    def _chain(self, policer=None, shaper=None, loss=0.01):
        topo = Topology(4)
        topo.add_link(2, 0, 1.25e6, loss=loss)
        topo.add_link(0, 1, 2.5e6, loss=loss, policer=policer, shaper=shaper)
        topo.add_link(1, 3, 1.25e6, loss=loss)
        return topo

    # -- clamp-order contract (Topology.path_loss composes raw, the
    # -- models clamp their composed input exactly once) ----------------
    def test_path_loss_composes_policer_loss_raw(self):
        topo = self._chain(loss=0.01)
        losses = np.zeros(topo.n_links)
        li = topo.path(2, 3)[1]  # the middle (policed) hop
        losses[li] = 0.30
        topo.set_policer_losses(losses)
        path = topo.path(2, 3)
        expected = 1.0 - (1.0 - 0.01) ** 3 * (1.0 - 0.30)
        assert topo.path_loss(path) == pytest.approx(expected, rel=1e-12)

    def test_path_loss_is_not_clamped_only_model_input_is(self):
        # Composition happens on raw probabilities; a policer-dominated
        # path may exceed the models' 0.45 ceiling or undershoot the
        # 1e-8 floor, and the clamp is applied once, to the composition.
        topo = Topology(3)
        topo.add_link(0, 1, 1e6, loss=0.0)
        topo.add_link(1, 2, 1e6, loss=0.0)
        losses = np.zeros(topo.n_links)
        for li in topo.path(0, 2):
            losses[li] = 0.6
        topo.set_policer_losses(losses)
        composed = topo.path_loss(topo.path(0, 2))
        assert composed == pytest.approx(1.0 - 0.4 * 0.4)  # 0.84 > ceiling
        m = Msmo97()
        r_composed, _ = m(np.array([1e6]), 0.1, np.array([composed]))
        r_ceiling, _ = m(np.array([1e6]), 0.1, np.array([0.45]))
        assert r_composed[0] == r_ceiling[0]  # clamped once, at the model

        # Floor side: three sub-floor hops compose below the floor and
        # are floored once — not per hop (which would triple the input).
        topo2 = Topology(4)
        for i in range(3):
            topo2.add_link(i, i + 1, 1e6, loss=1e-10)
        composed2 = topo2.path_loss(topo2.path(0, 3))
        assert composed2 < 1e-8  # raw: ~3e-10, below the model floor
        r_lo, _ = m(np.array([1e6]), 0.1, np.array([composed2]))
        r_floor, _ = m(np.array([1e6]), 0.1, np.array([1e-8]))
        assert r_lo[0] == r_floor[0]

    def test_policer_dominated_path_drives_closure_models(self):
        # Regression: ambient loss is negligible, the policer supplies
        # essentially all of the path loss the models see.
        table = self._one_way_table()
        clean = FlowSimulator(self._chain(loss=1e-9)).run(table)
        policed = FlowSimulator(
            self._chain(policer=(3e5, 1e5), loss=1e-9)
        ).run(table)
        installed = policed.policer_losses
        assert installed.max() > 0.05  # the pre-pass found real drops
        # Every flow's composed path loss is policer-dominated ...
        assert policed.losses.min() > 0.9 * installed.max()
        # ... and the closure model slows down accordingly.
        assert (policed.rates[policed.completed].mean()
                < 0.8 * clean.rates[clean.completed].mean())

    # -- two-phase pre-pass --------------------------------------------
    def test_two_phase_installs_policer_losses(self):
        table = self._one_way_table()
        topo = self._chain(policer=(4e5, 1e5))
        res = FlowSimulator(topo).run(table)
        positive = res.policer_losses[res.policer_losses > 0]
        assert positive.size == 1  # only the policed direction drops
        assert 0.0 < positive[0] < 1.0
        # Links without a policer stay at zero.
        for link in topo.links:
            if link.policer is None:
                assert link.policer_loss == 0.0

    def test_unpoliced_topology_is_single_pass_and_unchanged(self):
        table = self._one_way_table()
        res = FlowSimulator(self._chain()).run(table)
        assert np.all(res.policer_losses == 0.0)

    def test_fifo_discipline_supports_policed_links(self):
        table = self._one_way_table()
        res = FlowSimulator(
            self._chain(policer=(4e5, 1e5)), discipline="fifo"
        ).run(table)
        assert res.policer_losses.max() > 0.0

    # -- conditioned LinkStats exports ---------------------------------
    def _stats_on(self, res, attr):
        return next(s for s in res.links
                    if getattr(s.link, attr) is not None and s.n_flows)

    def test_policed_link_export_splits_offered_exactly(self):
        res = FlowSimulator(
            self._chain(policer=(4e5, 1e5))
        ).run(self._one_way_table())
        s = self._stats_on(res, "policer")
        offered = s.bytes_transferred()
        assert s.dropped_bytes > 0.0
        assert s.bytes_delivered() + s.dropped_bytes == pytest.approx(
            offered, rel=1e-9
        )
        assert s.policer_loss == pytest.approx(
            s.dropped_bytes / offered, rel=1e-9
        )

    def test_shaped_link_exports_conserve_bytes(self):
        rate, depth = 5e5, 2e5
        res = FlowSimulator(
            self._chain(shaper=(rate, depth))
        ).run(self._one_way_table())
        s = self._stats_on(res, "shaper")
        offered = s.bytes_transferred()
        assert s.dropped_bytes == 0.0
        assert s.bytes_delivered() == pytest.approx(offered, rel=1e-9)
        bin_w = 0.5
        proc = s.byte_process(bin_w)
        # Conservation through binning (default end covers the drain) ...
        assert proc.counts.sum() == pytest.approx(offered, rel=1e-9)
        # ... and the shaped output respects the (rho, sigma) envelope.
        assert (proc.counts / bin_w).max() <= rate + depth / bin_w + 1e-6

    def test_link_spec_validation(self):
        with pytest.raises(ValueError, match="policer rate"):
            Topology(2).add_link(0, 1, 1e6, policer=(0.0, 1.0))
        with pytest.raises(ValueError, match="shaper depth"):
            Topology(2).add_link(0, 1, 1e6, shaper=(1.0, -1.0))
        with pytest.raises(ValueError, match="policer_loss"):
            from repro.flowsim.topology import Link

            Link(index=0, src=0, dst=1, capacity=1e6, delay=0.01,
                 policer_loss=1.5)
